//! Command-line NMF driver: factorize a Matrix Market file or a
//! generated dataset with any algorithm/solver/grid combination.
//!
//! ```sh
//! cargo run --release -p nmf_bench --bin nmf_cli -- --dataset ssyn --scale 200 \
//!     --algo hpc2d --ranks 8 --k 10 --iters 20
//! cargo run --release -p nmf_bench --bin nmf_cli -- --input graph.mtx --k 8
//! cargo run --release -p nmf_bench --bin nmf_cli -- --dataset dsyn --json
//!
//! # rank sweep: one dataset + one universe, one JSON summary per k
//! cargo run --release -p nmf_bench --bin nmf_cli -- --dataset ssyn --k 4,8,16 --json
//!
//! # long job with durable checkpoints, resumable after a crash
//! cargo run --release -p nmf_bench --bin nmf_cli -- --dataset dsyn --k 10 \
//!     --checkpoint run.ckpt --checkpoint-every 5 --checkpoint-keep 3
//! cargo run --release -p nmf_bench --bin nmf_cli -- --dataset dsyn --resume run.ckpt
//!
//! # elastic resume: continue the same run on a different scheme/grid
//! cargo run --release -p nmf_bench --bin nmf_cli -- --dataset dsyn \
//!     --resume run.ckpt --regrid 2x2
//! cargo run --release -p nmf_bench --bin nmf_cli -- --dataset dsyn \
//!     --resume run.ckpt --algo hpc1d --ranks 2
//!
//! # what's inside a checkpoint, without loading the factors,
//! # and which grids a 8-rank resume could land on
//! cargo run --release -p nmf_bench --bin nmf_cli -- checkpoints inspect run.ckpt
//! cargo run --release -p nmf_bench --bin nmf_cli -- checkpoints inspect run.ckpt --ranks 8
//!
//! # out of core: materialize once, then factorize without loading the file
//! cargo run --release -p nmf_bench --bin nmf_cli -- convert --dataset webbase \
//!     --scale 50 --out webbase.nmfs
//! cargo run --release -p nmf_bench --bin nmf_cli -- --input webbase.nmfs --mmap --k 8
//! ```
//!
//! `--json` replaces the human-readable report with one JSON object per
//! fitted rank on stdout (objective, iterations, stop reason, per-task
//! compute times, per-collective communication words/messages plus
//! split-phase posts and overlap/in-flight seconds) for scripted
//! benchmarking and model selection.
//!
//! `--no-overlap` disables the split-phase schedule of the HPC scheme
//! (see `docs/comm-overlap.md`), forcing fully synchronous collectives —
//! the baseline for measuring what overlap buys.
//!
//! Argument handling is `Result`-based: every problem found is
//! accumulated and reported once (as [`NmfError::InvalidArgs`]) together
//! with the usage text, instead of exiting at the first bad flag.

use hpc_nmf::inspect_checkpoint;
use hpc_nmf::prelude::*;

use nmf_data::DatasetKind;
use nmf_vmpi::Op;
use std::path::{Path, PathBuf};
use std::process::exit;
use std::time::{Duration, Instant};

/// Parsed command line. Options the user set explicitly stay `Some`, so
/// `--resume` can detect contradictory flags.
#[derive(Debug, Default)]
struct Args {
    input: Option<String>,
    dataset: Option<String>,
    scale: Option<usize>,
    algo: Option<Algo>,
    ranks: Option<usize>,
    ks: Option<Vec<usize>>,
    iters: Option<usize>,
    tol: Option<f64>,
    solver: Option<SolverKind>,
    seed: Option<u64>,
    json: bool,
    no_overlap: bool,
    mmap: bool,
    out: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
    checkpoint_every: Option<usize>,
    checkpoint_keep: Option<usize>,
    resume: Option<PathBuf>,
    regrid: Option<Grid>,
}

impl Args {
    fn ks(&self) -> Vec<usize> {
        self.ks.clone().unwrap_or_else(|| vec![10])
    }

    fn config(&self, k: usize) -> NmfConfig {
        let mut c = NmfConfig::new(k)
            .with_max_iters(self.iters.unwrap_or(20))
            .with_solver(self.solver.unwrap_or(SolverKind::Bpp))
            .with_seed(self.seed.unwrap_or(42))
            .with_overlap(!self.no_overlap);
        if let Some(t) = self.tol {
            c = c.with_tol(t);
        }
        c
    }
}

/// Parses `argv` (without the program name), accumulating every error
/// instead of stopping at the first.
fn parse_args(argv: &[String]) -> Result<Args, Vec<String>> {
    let mut args = Args::default();
    let mut errors = Vec::new();
    let mut it = argv.iter().peekable();
    while let Some(flag) = it.next() {
        let mut val = |name: &str, errors: &mut Vec<String>| -> Option<String> {
            match it.next() {
                Some(v) => Some(v.clone()),
                None => {
                    errors.push(format!("missing value for {name}"));
                    None
                }
            }
        };
        match flag.as_str() {
            "--input" => args.input = val("--input", &mut errors),
            "--dataset" => args.dataset = val("--dataset", &mut errors),
            "--scale" => {
                args.scale = parse_num(val("--scale", &mut errors), "--scale", &mut errors)
            }
            "--algo" => {
                if let Some(v) = val("--algo", &mut errors) {
                    match v.as_str() {
                        "seq" => args.algo = Some(Algo::Sequential),
                        "naive" => args.algo = Some(Algo::Naive),
                        "hpc1d" => args.algo = Some(Algo::Hpc1D),
                        "hpc2d" => args.algo = Some(Algo::Hpc2D),
                        other => errors.push(format!(
                            "unknown algorithm '{other}' (expected seq | naive | hpc1d | hpc2d)"
                        )),
                    }
                }
            }
            "--ranks" | "-p" => {
                args.ranks = parse_num(val("--ranks", &mut errors), "--ranks", &mut errors)
            }
            "--k" | "-k" => {
                if let Some(v) = val("--k", &mut errors) {
                    let mut ks = Vec::new();
                    for part in v.split(',') {
                        match part.trim().parse::<usize>() {
                            Ok(k) => ks.push(k),
                            Err(_) => errors.push(format!(
                                "--k expects an integer or comma list (e.g. 4,8,16), got '{part}'"
                            )),
                        }
                    }
                    if !ks.is_empty() {
                        args.ks = Some(ks);
                    }
                }
            }
            "--iters" => {
                args.iters = parse_num(val("--iters", &mut errors), "--iters", &mut errors)
            }
            "--tol" => {
                if let Some(v) = val("--tol", &mut errors) {
                    match v.parse::<f64>() {
                        Ok(t) => args.tol = Some(t),
                        Err(_) => errors.push(format!("--tol expects a number, got '{v}'")),
                    }
                }
            }
            "--solver" => {
                if let Some(v) = val("--solver", &mut errors) {
                    match v.as_str() {
                        "bpp" => args.solver = Some(SolverKind::Bpp),
                        "mu" => args.solver = Some(SolverKind::Mu),
                        "hals" => args.solver = Some(SolverKind::Hals),
                        "activeset" => args.solver = Some(SolverKind::ActiveSet),
                        other => errors.push(format!(
                            "unknown solver '{other}' (expected bpp | mu | hals | activeset)"
                        )),
                    }
                }
            }
            "--seed" => {
                args.seed =
                    parse_num(val("--seed", &mut errors), "--seed", &mut errors).map(|s| s as u64)
            }
            "--json" => args.json = true,
            "--no-overlap" => args.no_overlap = true,
            "--mmap" => args.mmap = true,
            "--out" => args.out = val("--out", &mut errors).map(PathBuf::from),
            "--checkpoint" => args.checkpoint = val("--checkpoint", &mut errors).map(PathBuf::from),
            "--checkpoint-every" => {
                args.checkpoint_every = parse_num(
                    val("--checkpoint-every", &mut errors),
                    "--checkpoint-every",
                    &mut errors,
                )
            }
            "--checkpoint-keep" => {
                args.checkpoint_keep = parse_num(
                    val("--checkpoint-keep", &mut errors),
                    "--checkpoint-keep",
                    &mut errors,
                )
            }
            "--resume" => args.resume = val("--resume", &mut errors).map(PathBuf::from),
            "--regrid" => {
                if let Some(v) = val("--regrid", &mut errors) {
                    match parse_grid(&v) {
                        Some(g) => args.regrid = Some(g),
                        None => errors
                            .push(format!("--regrid expects PRxPC (e.g. 2x2, 1x8), got '{v}'")),
                    }
                }
            }
            "--help" | "-h" => {
                print_help();
                exit(0);
            }
            other => errors.push(format!("unknown flag {other}")),
        }
    }

    // Cross-flag constraints, still all reported at once.
    if args.checkpoint_every.is_some() && args.checkpoint.is_none() && args.resume.is_none() {
        errors.push("--checkpoint-every needs --checkpoint FILE (or --resume FILE)".into());
    }
    if args.checkpoint_every == Some(0) {
        errors.push("--checkpoint-every must be >= 1".into());
    }
    if args.checkpoint_keep.is_some() && args.checkpoint.is_none() && args.resume.is_none() {
        errors.push("--checkpoint-keep needs --checkpoint FILE (or --resume FILE)".into());
    }
    if args.resume.is_some() && args.ks.as_ref().is_some_and(|ks| ks.len() > 1) {
        errors.push("--resume continues one run; it cannot be combined with a --k sweep".into());
    }
    if args.regrid.is_some() && args.resume.is_none() {
        errors.push("--regrid re-targets a resumed checkpoint; it needs --resume FILE".into());
    }
    if args.ks.as_ref().is_some_and(|ks| ks.len() > 1) && args.checkpoint.is_some() {
        errors.push(
            "--checkpoint with a --k sweep would overwrite one file per k; run sweeps without it"
                .into(),
        );
    }
    if args.mmap && args.input.is_none() {
        errors.push("--mmap needs --input FILE.nmfs (an NMFS binary, see `convert`)".into());
    }
    if let Some(ds) = &args.dataset {
        if !matches!(ds.as_str(), "dsyn" | "ssyn" | "video" | "webbase") {
            errors.push(format!(
                "unknown dataset '{ds}' (expected dsyn | ssyn | video | webbase)"
            ));
        }
    }

    if errors.is_empty() {
        Ok(args)
    } else {
        Err(errors)
    }
}

/// Parses `PRxPC` grid syntax (`2x2`, `1x8`).
fn parse_grid(v: &str) -> Option<Grid> {
    let (pr, pc) = v.split_once(['x', 'X'])?;
    let (pr, pc) = (
        pr.trim().parse::<usize>().ok()?,
        pc.trim().parse::<usize>().ok()?,
    );
    (pr >= 1 && pc >= 1).then(|| Grid::new(pr, pc))
}

fn parse_num(v: Option<String>, name: &str, errors: &mut Vec<String>) -> Option<usize> {
    let v = v?;
    match v.parse::<usize>() {
        Ok(n) => Some(n),
        Err(_) => {
            errors.push(format!("{name} expects an integer, got '{v}'"));
            None
        }
    }
}

fn print_help() {
    println!(
        "nmf_cli — distributed NMF on a virtual MPI\n\
         \n\
         input (choose one):\n\
         \x20 --input FILE.mtx        Matrix Market file (coordinate or array)\n\
         \x20 --dataset NAME          dsyn | ssyn | video | webbase (generated)\n\
         \x20 --scale N               divide paper dims by N (default 200)\n\
         \x20 --mmap                  treat --input FILE as an NMFS binary and\n\
         \x20                         stream it out of core (never fully loads)\n\
         \n\
         options:\n\
         \x20 --algo A                seq | naive | hpc1d | hpc2d (default hpc2d)\n\
         \x20 --ranks P               virtual ranks (default 4)\n\
         \x20 --k K[,K2,...]          low rank, or a comma list to sweep (default 10)\n\
         \x20 --iters N               max iterations (default 20)\n\
         \x20 --tol T                 early-stop tolerance\n\
         \x20 --solver S              bpp | mu | hals | activeset (default bpp)\n\
         \x20 --seed N                RNG seed (default 42)\n\
         \x20 --json                  machine-readable summary per k on stdout\n\
         \n\
         durability:\n\
         \x20 --checkpoint FILE       write a checkpoint when the run finishes\n\
         \x20 --checkpoint-every N    also write FILE every N iterations\n\
         \x20 --checkpoint-keep N     keep the last N superseded checkpoints as\n\
         \x20                         FILE.1 .. FILE.N (default 0: overwrite)\n\
         \x20 --resume FILE           continue an interrupted run from FILE;\n\
         \x20                         combine with --algo / --ranks / --regrid to\n\
         \x20                         continue on a different scheme or grid\n\
         \x20 --regrid PRxPC          target grid for a resumed run (e.g. 2x2, 1x8)\n\
         \n\
         tooling:\n\
         \x20 checkpoints inspect FILE [--ranks N]\n\
         \x20                            print a checkpoint's versioned header\n\
         \x20                            (shape, k, algo, grid, fingerprint,\n\
         \x20                            iteration, checksum) without loading factors;\n\
         \x20                            --ranks N lists the grids a resume onto\n\
         \x20                            N ranks could target\n\
         \x20 convert ... --out FILE.nmfs  materialize a sparse input (--input\n\
         \x20                            FILE.mtx or --dataset/--scale/--seed)\n\
         \x20                            as an NMFS binary for --mmap runs"
    );
}

/// Loads the input for a run: out-of-core ([`SharedInput::open_mmap`])
/// under `--mmap`, otherwise the resident matrix wrapped in a
/// [`SharedInput`] so a `--k` sweep extracts per-rank blocks exactly
/// once.
fn load_input(args: &Args) -> Result<SharedInput, NmfError> {
    if args.mmap {
        let path = args.input.as_deref().expect("parse_args requires --input");
        return SharedInput::open_mmap(path);
    }
    load_resident(args).map(SharedInput::new)
}

fn load_resident(args: &Args) -> Result<Input, NmfError> {
    if let Some(path) = &args.input {
        let io = |source| NmfError::Io {
            path: PathBuf::from(path),
            source,
        };
        let bytes = std::fs::read(path).map_err(io)?;
        // NMFS binaries load resident too (without --mmap they are
        // simply read into RAM); everything else is Matrix Market text.
        if bytes.starts_with(&nmf_sparse::io::NMFS_MAGIC) {
            return nmf_sparse::io::read_csr_binary(bytes.as_slice())
                .map(Input::Sparse)
                .map_err(|e| NmfError::Corrupt {
                    path: PathBuf::from(path),
                    reason: format!("NMFS parse error: {e}"),
                });
        }
        let text = String::from_utf8(bytes).map_err(|_| NmfError::Corrupt {
            path: PathBuf::from(path),
            reason: "input is neither an NMFS binary nor UTF-8 Matrix Market text".into(),
        })?;
        // Peek the banner to pick sparse vs dense.
        let parsed = if text.lines().next().is_some_and(|l| l.contains("array")) {
            nmf_sparse::io::read_matrix_market_dense(text.as_bytes()).map(Input::Dense)
        } else {
            nmf_sparse::io::read_matrix_market(text.as_bytes()).map(Input::Sparse)
        };
        parsed.map_err(|e| NmfError::Corrupt {
            path: PathBuf::from(path),
            reason: format!("Matrix Market parse error: {e}"),
        })
    } else {
        let kind = match args.dataset.as_deref() {
            Some("dsyn") => DatasetKind::Dsyn,
            Some("ssyn") | None => DatasetKind::Ssyn,
            Some("video") => DatasetKind::Video,
            Some("webbase") => DatasetKind::Webbase,
            Some(other) => {
                // parse_args validated this; defensive fallback.
                return Err(NmfError::InvalidArgs {
                    errors: vec![format!("unknown dataset '{other}'")],
                });
            }
        };
        Ok(kind
            .build(args.scale.unwrap_or(200), args.seed.unwrap_or(42))
            .input)
    }
}

/// `nmf_cli checkpoints inspect FILE [--ranks N]`: the versioned header,
/// fingerprint and checksum verdict of a checkpoint, without loading the
/// factors. With `--ranks N`, also lists every grid a resume onto N
/// ranks could target (see `fitting_grids`).
fn run_checkpoints(argv: &[String]) -> Result<(), NmfError> {
    let usage = || NmfError::InvalidArgs {
        errors: vec!["usage: nmf_cli checkpoints inspect FILE [--ranks N]".into()],
    };
    let (path, target_ranks) = match argv {
        [sub, path] if sub == "inspect" => (path, None),
        [sub, path, flag, n] if sub == "inspect" && flag == "--ranks" => {
            let n: usize = n.parse().map_err(|_| NmfError::InvalidArgs {
                errors: vec![format!("--ranks expects an integer >= 1, got '{n}'")],
            })?;
            if n == 0 {
                return Err(NmfError::InvalidArgs {
                    errors: vec!["--ranks must be >= 1".into()],
                });
            }
            (path, Some(n))
        }
        _ => return Err(usage()),
    };
    let path = Path::new(path);
    let s = inspect_checkpoint(path)?;
    let meta = &s.meta;
    println!("{}", path.display());
    println!("  format version: {}", s.version);
    println!(
        "  input:          {}x{} on {} ranks, grid {}x{}",
        meta.m, meta.n, meta.ranks, meta.grid.pr, meta.grid.pc
    );
    println!(
        "  run:            {} k={} solver {:?} seed {}",
        meta.algo.name(),
        meta.config.k,
        meta.config.solver,
        meta.config.seed
    );
    println!(
        "  progress:       iteration {}/{}, objective {:.6e}, {:.2?} elapsed",
        s.iterations_done, meta.config.max_iters, s.objective, s.elapsed
    );
    println!(
        "  factors:        W {}x{}, Ht {}x{} (payloads skipped)",
        s.w_shape.0, s.w_shape.1, s.ht_shape.0, s.ht_shape.1
    );
    println!("  fingerprint:    {:#018x}", s.fingerprint);
    println!(
        "  checksum:       {} ({} bytes)",
        if s.checksum_ok {
            "ok"
        } else {
            "FAILED — payload damaged, resume will refuse this file"
        },
        s.file_bytes
    );
    if let Some(ranks) = target_ranks {
        let grids = fitting_grids(meta.m, meta.n, ranks);
        if grids.is_empty() {
            println!(
                "  regrid targets: none — no {ranks}-rank grid fits a {}x{} problem",
                meta.m, meta.n
            );
        } else {
            let list: Vec<String> = grids
                .iter()
                .map(|g| {
                    let stored = *g == meta.grid && ranks == meta.ranks;
                    format!("{}x{}{}", g.pr, g.pc, if stored { " (stored)" } else { "" })
                })
                .collect();
            println!("  regrid targets: {} ranks -> {}", ranks, list.join(", "));
        }
    }
    if !s.checksum_ok {
        exit(1);
    }
    Ok(())
}

/// `nmf_cli convert ... --out FILE.nmfs`: materialize a sparse input
/// (a Matrix Market file or a generated dataset) as an `NMFS` binary,
/// the format `--mmap` runs stream out of core.
fn run_convert(argv: &[String]) -> Result<(), NmfError> {
    let args = parse_args(argv).map_err(|errors| NmfError::InvalidArgs { errors })?;
    let mut errors = Vec::new();
    if args.out.is_none() {
        errors.push("convert needs --out FILE.nmfs".into());
    }
    if args.mmap {
        errors.push("--mmap reads an NMFS file; convert writes one".into());
    }
    if !errors.is_empty() {
        return Err(NmfError::InvalidArgs { errors });
    }
    let out = args.out.as_deref().expect("checked above");
    let input = load_resident(&args)?;
    let (m, n) = input.shape();
    nmf_data::write_input_nmfs(&input, out).map_err(|source| {
        if source.kind() == std::io::ErrorKind::InvalidInput {
            NmfError::InvalidArgs {
                errors: vec![format!("{source} (convert a sparse input instead)")],
            }
        } else {
            NmfError::Io {
                path: out.to_path_buf(),
                source,
            }
        }
    })?;
    let bytes = std::fs::metadata(out).map(|md| md.len()).unwrap_or(0);
    println!(
        "wrote {} ({m}x{n}, {} nnz, {bytes} bytes)",
        out.display(),
        input.nnz()
    );
    Ok(())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().is_some_and(|a| a == "checkpoints") {
        if let Err(e) = run_checkpoints(&argv[1..]) {
            eprintln!("error: {e}");
            exit(2);
        }
        return;
    }
    if argv.first().is_some_and(|a| a == "convert") {
        if let Err(e) = run_convert(&argv[1..]) {
            eprintln!("error: {e}");
            exit(2);
        }
        return;
    }
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(errors) => {
            print_help();
            eprintln!("\n{}", NmfError::InvalidArgs { errors });
            exit(2);
        }
    };
    if let Err(e) = run(&args) {
        eprintln!("error: {e}");
        exit(2);
    }
}

fn run(args: &Args) -> Result<(), NmfError> {
    if args.out.is_some() {
        return Err(NmfError::InvalidArgs {
            errors: vec!["--out belongs to the convert subcommand".into()],
        });
    }
    let input = load_input(args)?;
    let ks = args.ks();

    if let Some(path) = &args.resume {
        let mut target = RegridTarget::new();
        if let Some(a) = args.algo {
            target = target.algo(a);
        }
        if let Some(p) = args.ranks {
            target = target.ranks(p);
        }
        if let Some(g) = args.regrid {
            target = target.grid(g);
        }
        let mut model = Model::load_regrid_shared(path, &input, target)?;
        check_resume_conflicts(args, &model)?;
        if let Some(iters) = args.iters {
            model.set_max_iters(iters);
        }
        if !args.json {
            let grid = model.grid();
            println!(
                "resuming {} on {} ranks (grid {}x{}) at iteration {} from {}",
                model.algo().name(),
                model.ranks(),
                grid.pr,
                grid.pc,
                model.iterations(),
                path.display()
            );
        }
        let ckpt = args.checkpoint.clone().unwrap_or_else(|| path.clone());
        drive_and_report(args, &input, &mut model, Some(&ckpt))?;
        return Ok(());
    }

    let mut model: Option<Model> = None;
    for &k in &ks {
        let config = args.config(k);
        let mdl = match &mut model {
            None => {
                let algo = args.algo.unwrap_or(Algo::Hpc2D);
                let ranks = if matches!(algo, Algo::Sequential) {
                    1
                } else {
                    args.ranks.unwrap_or(4)
                };
                model = Some(
                    Nmf::on_shared(&input)
                        .config(config)
                        .algo(algo)
                        .ranks(ranks)
                        .build()?,
                );
                model.as_mut().expect("just built")
            }
            Some(mdl) => {
                // Sweep continuation: same data, same universe, next k.
                mdl.refit(config)?;
                mdl
            }
        };
        if !args.json {
            let grid = mdl.grid();
            println!(
                "{}x{} ({} nnz), {} on {} ranks (grid {}x{}), k={}, solver {:?}",
                mdl.shape().0,
                mdl.shape().1,
                input.nnz(),
                mdl.algo().name(),
                mdl.ranks(),
                grid.pr,
                grid.pc,
                k,
                mdl.config().solver
            );
        }
        drive_and_report(args, &input, mdl, args.checkpoint.as_deref())?;
    }
    Ok(())
}

/// Flags given alongside `--resume` must agree with what the checkpoint
/// recorded — a silent mismatch would "resume" a different experiment.
/// `--algo`, `--ranks` and `--regrid` are *not* checked here: they are
/// regrid overrides, honored by `Model::load_regrid_shared`.
fn check_resume_conflicts(args: &Args, model: &Model) -> Result<(), NmfError> {
    let mut errors = Vec::new();
    let meta = model.meta();
    if let Some(ks) = &args.ks {
        if ks != &[meta.config.k] {
            errors.push(format!(
                "--k {:?} conflicts with the checkpoint (written with k={})",
                ks, meta.config.k
            ));
        }
    }
    if let Some(s) = args.solver {
        if s != meta.config.solver {
            errors.push(format!(
                "--solver {s:?} conflicts with the checkpoint (written with {:?})",
                meta.config.solver
            ));
        }
    }
    if let Some(s) = args.seed {
        if s != meta.config.seed {
            errors.push(format!(
                "--seed {s} conflicts with the checkpoint (written with {})",
                meta.config.seed
            ));
        }
    }
    if let Some(t) = args.tol {
        if meta.config.tol != Some(t) {
            errors.push(format!(
                "--tol {t} conflicts with the checkpoint (written with {}); the resumed \
                 run keeps the recorded convergence settings",
                match meta.config.tol {
                    Some(ct) => format!("tol {ct}"),
                    None => "no tolerance".to_string(),
                }
            ));
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(NmfError::InvalidArgs { errors })
    }
}

/// Steps the model to its stopping condition, writing checkpoints along
/// the way when configured, then prints the summary.
fn drive_and_report(
    args: &Args,
    input: &SharedInput,
    model: &mut Model,
    ckpt: Option<&Path>,
) -> Result<(), NmfError> {
    let every = args.checkpoint_every.unwrap_or(0);
    let keep = args.checkpoint_keep.unwrap_or(0);
    let limit = model.config().max_iters;
    let t0 = Instant::now();
    let stop = loop {
        if model.iterations() >= limit {
            break StopReason::MaxIters;
        }
        model.step();
        if every > 0 && model.iterations().is_multiple_of(every) {
            if let Some(path) = ckpt {
                model.save_rotated(path, keep)?;
            }
        }
        if let Some(r) = model.stop_reason() {
            break r;
        }
    };
    let wall = t0.elapsed();
    if let Some(path) = ckpt {
        model.save_rotated(path, keep)?;
        if !args.json {
            println!("checkpoint written to {}", path.display());
        }
    }

    if args.json {
        print_json(input, model, stop, wall);
    } else {
        print_human(model, stop, wall);
    }
    Ok(())
}

fn print_human(model: &Model, stop: StopReason, wall: Duration) {
    let iters = model.records().len();
    println!(
        "\n{} iterations in {:.2?} ({:.4} s/iter), stopped: {}",
        iters,
        wall,
        wall.as_secs_f64() / iters.max(1) as f64,
        stop.as_str()
    );
    println!("relative error: {:.6}", model.rel_error());
    println!("objective:      {:.6e}", model.objective());
    let comm = model.total_comm();
    if comm.total_messages() > 0 {
        println!("\ncommunication (all ranks):");
        for op in [Op::AllGather, Op::ReduceScatter, Op::AllReduce] {
            let s = comm.op(op);
            println!(
                "  {:<15} {:>12} words {:>8} msgs",
                op.name(),
                s.words,
                s.messages
            );
        }
        if comm.total_posts() > 0 {
            println!(
                "  overlap: {} split-phase posts, {:.3?} of compute hidden in flight",
                comm.total_posts(),
                comm.total_overlap()
            );
        }
    }
}

/// A float as a JSON token: full-precision scientific for finite values,
/// `null` for NaN/inf (which are not valid JSON and would break every
/// consumer — a diverging run can legitimately produce them).
fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.17e}")
    } else {
        "null".to_string()
    }
}

/// One JSON object per fitted rank on stdout: everything a benchmark or
/// model-selection script wants, hand-rolled (the container pulls no
/// serde).
fn print_json(input: &SharedInput, model: &Model, stop: StopReason, wall: Duration) {
    let (m, n) = model.shape();
    let grid = model.grid();
    let config = model.config();
    let compute = model.compute_total();
    let comm = model.total_comm();
    let mut s = String::with_capacity(1024);
    s.push('{');
    s.push_str(&format!(
        "\"algo\":\"{}\",\"m\":{m},\"n\":{n},\"nnz\":{},\"ranks\":{},\"grid\":[{},{}],\"k\":{},\"solver\":\"{:?}\",\"seed\":{},",
        model.algo().name(),
        input.nnz(),
        model.ranks(),
        grid.pr,
        grid.pc,
        config.k,
        config.solver,
        config.seed
    ));
    s.push_str(&format!("\"overlap\":{},", config.overlap));
    s.push_str(&format!(
        "\"iterations\":{},\"total_iterations\":{},\"stop\":\"{}\",\"wall_seconds\":{:.6},\"objective\":{},\"rel_error\":{},",
        model.records().len(),
        model.iterations(),
        stop.as_str(),
        wall.as_secs_f64(),
        jnum(model.objective()),
        jnum(model.rel_error())
    ));
    s.push_str(&format!(
        "\"compute_seconds\":{{\"mm\":{:.6},\"nls\":{:.6},\"gram\":{:.6}}},",
        compute.mm.as_secs_f64(),
        compute.nls.as_secs_f64(),
        compute.gram.as_secs_f64()
    ));
    s.push_str("\"objective_history\":[");
    for (i, rec) in model.records().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&jnum(rec.objective));
    }
    s.push_str("],\"comm\":{");
    for (i, op) in [Op::AllGather, Op::ReduceScatter, Op::AllReduce, Op::P2p]
        .into_iter()
        .enumerate()
    {
        if i > 0 {
            s.push(',');
        }
        let st = comm.op(op);
        s.push_str(&format!(
            "\"{}\":{{\"words\":{},\"messages\":{},\"seconds\":{:.6},\
             \"posts\":{},\"overlap_seconds\":{:.6},\"inflight_seconds\":{:.6}}}",
            op.name(),
            st.words,
            st.messages,
            st.time.as_secs_f64(),
            st.posts,
            st.overlap.as_secs_f64(),
            st.inflight.as_secs_f64()
        ));
    }
    s.push_str("}}");
    println!("{s}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_a_rank_sweep() {
        let args = parse_args(&argv("--dataset ssyn --k 4,8,16 --json")).expect("valid");
        assert_eq!(args.ks(), vec![4, 8, 16]);
        assert!(args.json);
    }

    #[test]
    fn accumulates_every_error() {
        let errs = parse_args(&argv(
            "--bogus --k x --solver nope --algo what --checkpoint-every 0",
        ))
        .expect_err("invalid");
        assert!(
            errs.len() >= 5,
            "expected all errors reported, got {errs:?}"
        );
        assert!(errs.iter().any(|e| e.contains("--bogus")));
        assert!(errs.iter().any(|e| e.contains("comma list")));
        assert!(errs.iter().any(|e| e.contains("unknown solver")));
        assert!(errs.iter().any(|e| e.contains("unknown algorithm")));
        assert!(errs.iter().any(|e| e.contains("--checkpoint-every")));
    }

    #[test]
    fn no_overlap_flag_disables_overlap_in_config() {
        let args = parse_args(&argv("--dataset dsyn --no-overlap")).expect("valid");
        assert!(args.no_overlap);
        assert!(!args.config(10).overlap);
        let args = parse_args(&argv("--dataset dsyn")).expect("valid");
        assert!(args.config(10).overlap, "overlap defaults on");
    }

    #[test]
    fn mmap_requires_an_input_file() {
        let errs = parse_args(&argv("--dataset ssyn --mmap")).expect_err("invalid");
        assert!(errs.iter().any(|e| e.contains("--mmap needs --input")));
        let args = parse_args(&argv("--input a.nmfs --mmap --k 4")).expect("valid");
        assert!(args.mmap);
    }

    #[test]
    fn missing_value_is_reported() {
        let errs = parse_args(&argv("--dataset")).expect_err("invalid");
        assert!(errs.iter().any(|e| e.contains("missing value")));
    }

    #[test]
    fn checkpoint_keep_requires_a_path() {
        let errs = parse_args(&argv("--checkpoint-keep 3")).expect_err("invalid");
        assert!(errs[0].contains("--checkpoint FILE"));
        assert!(parse_args(&argv("--checkpoint f.ckpt --checkpoint-keep 3")).is_ok());
        assert!(parse_args(&argv("--resume f.ckpt --checkpoint-keep 3")).is_ok());
    }

    #[test]
    fn checkpoint_every_requires_a_path() {
        let errs = parse_args(&argv("--checkpoint-every 5")).expect_err("invalid");
        assert!(errs[0].contains("--checkpoint FILE"));
        assert!(parse_args(&argv("--checkpoint f.ckpt --checkpoint-every 5")).is_ok());
        assert!(parse_args(&argv("--resume f.ckpt --checkpoint-every 5")).is_ok());
    }

    #[test]
    fn regrid_parses_grids_and_requires_resume() {
        assert_eq!(parse_grid("2x2"), Some(Grid::new(2, 2)));
        assert_eq!(parse_grid("1x8"), Some(Grid::new(1, 8)));
        assert_eq!(parse_grid("4X2"), Some(Grid::new(4, 2)));
        assert_eq!(parse_grid("0x2"), None);
        assert_eq!(parse_grid("2x"), None);
        assert_eq!(parse_grid("axb"), None);
        assert_eq!(parse_grid("8"), None);

        let args = parse_args(&argv("--dataset ssyn --resume f.ckpt --regrid 2x4")).expect("valid");
        assert_eq!(args.regrid, Some(Grid::new(2, 4)));
        let errs = parse_args(&argv("--dataset ssyn --regrid 2x4")).expect_err("invalid");
        assert!(errs.iter().any(|e| e.contains("needs --resume")));
        let errs = parse_args(&argv("--dataset ssyn --resume f.ckpt --regrid 9")).expect_err("bad");
        assert!(errs.iter().any(|e| e.contains("PRxPC")));
    }

    #[test]
    fn sweeps_exclude_resume_and_checkpoint() {
        let errs = parse_args(&argv("--k 4,8 --resume f.ckpt")).expect_err("invalid");
        assert!(errs.iter().any(|e| e.contains("sweep")));
        let errs = parse_args(&argv("--k 4,8 --checkpoint f.ckpt")).expect_err("invalid");
        assert!(errs.iter().any(|e| e.contains("sweep")));
    }
}
