//! Table 2: algorithmic cost verification — compares the *counted*
//! per-iteration communication of real runs (every word and message the
//! virtual MPI actually sent) against the paper's analytic formulas.
//!
//! | Algorithm | Words | Messages | Memory |
//! |---|---|---|---|
//! | Naive | O((m+n)k) | O(log p) | O(mn/p + (m+n)k) |
//! | HPC-NMF | O(min{√(mnk²/p), nk}) | O(log p) | O(mn/p + √(mnk²/p)) |
//!
//! ```sh
//! cargo run --release -p nmf-bench --bin table2_check
//! ```

use hpc_nmf::prelude::*;
use hpc_nmf::total_comm;
use nmf_matrix::rng::Fill;
use nmf_matrix::Mat;
use nmf_vmpi::collectives::log2_ceil;
use nmf_vmpi::Op;

struct Case {
    m: usize,
    n: usize,
    k: usize,
    p: usize,
    algo: Algo,
}

fn expected_words_per_iter(c: &Case) -> f64 {
    let (m, n, k) = (c.m as f64, c.n as f64, c.k as f64);
    let grid = c.algo.grid(c.m, c.n, c.p);
    let (pr, pc) = (grid.pr as f64, grid.pc as f64);
    match c.algo {
        // All-gathers of the full factors: ((p−1)/p)(m+n)k.
        Algo::Naive => (c.p as f64 - 1.0) / c.p as f64 * (m + n) * k,
        // Two all-gathers + two reduce-scatters + two k² all-reduces.
        _ => {
            let ag = (pr - 1.0) * n * k / c.p as f64 + (pc - 1.0) * m * k / c.p as f64;
            let rs = ag;
            let ar = 2.0 * 2.0 * (c.p as f64 - 1.0) / c.p as f64 * k * k;
            ag + rs + ar
        }
    }
}

fn main() {
    println!("Table 2 check: counted vs analytic per-iteration communication\n");
    let iters = 4usize;
    let cases = [
        Case {
            m: 240,
            n: 160,
            k: 8,
            p: 16,
            algo: Algo::Hpc2D,
        },
        Case {
            m: 240,
            n: 160,
            k: 8,
            p: 16,
            algo: Algo::Hpc1D,
        },
        Case {
            m: 240,
            n: 160,
            k: 8,
            p: 16,
            algo: Algo::Naive,
        },
        Case {
            m: 480,
            n: 480,
            k: 10,
            p: 16,
            algo: Algo::Hpc2D,
        },
        Case {
            m: 480,
            n: 480,
            k: 10,
            p: 16,
            algo: Algo::Naive,
        },
        Case {
            m: 2048,
            n: 32,
            k: 4,
            p: 8,
            algo: Algo::Hpc2D,
        }, // tall-skinny -> 1D
        Case {
            m: 240,
            n: 160,
            k: 8,
            p: 12,
            algo: Algo::Hpc2D,
        }, // non-power-of-two
    ];

    println!(
        "{:<14} {:>5} {:>12} {:>14} {:>14} {:>8} {:>10} {:>10}",
        "algo", "p", "grid", "counted", "analytic", "ratio", "msgs/iter", "4·log2(p)"
    );
    for c in &cases {
        let input = Input::Dense(Mat::uniform(c.m, c.n, 7));
        let out = factorize(
            &input,
            c.p,
            c.algo,
            &NmfConfig::new(c.k).with_max_iters(iters),
        );
        // Max over ranks of per-iteration words (critical path), from
        // the last iteration's delta records.
        let counted: f64 = out
            .rank_comm
            .iter()
            .map(|s| {
                (s.op(Op::AllGather).words
                    + s.op(Op::ReduceScatter).words
                    + s.op(Op::AllReduce).words) as f64
                    / iters as f64
            })
            .fold(0.0, f64::max);
        let analytic = expected_words_per_iter(c);
        let grid = c.algo.grid(c.m, c.n, c.p);
        let msgs = out
            .rank_comm
            .iter()
            .map(|s| s.total_messages() as f64 / iters as f64)
            .fold(0.0, f64::max);
        println!(
            "{:<14} {:>5} {:>12} {:>14.0} {:>14.0} {:>8.3} {:>10.1} {:>10}",
            c.algo.name(),
            c.p,
            format!("{}x{}", grid.pr, grid.pc),
            counted,
            analytic,
            counted / analytic,
            msgs,
            4 * 6 * log2_ceil(c.p), // 6 collectives/iter, each ≤ ~4 log p msgs
        );
        let total = total_comm(&out);
        assert!(
            counted / analytic < 1.35 && counted / analytic > 0.65,
            "counted communication diverges from Table 2 formula"
        );
        let _ = total;
    }
    println!(
        "\nAll ratios within [0.65, 1.35] of the analytic formulas \
         (exact at power-of-two grids with divisible dims; small\n\
         overheads from the objective all-reduce, uneven blocks, and \
         non-power-of-two fold steps)."
    );
}
