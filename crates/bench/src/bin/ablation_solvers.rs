//! Ablation: the local NLS solver menu (paper §7). BPP costs more per
//! iteration than MU/HALS but converges in fewer iterations; with
//! cheaper solvers the relative weight of communication grows, which is
//! exactly why communication efficiency matters.
//!
//! ```sh
//! cargo run --release -p nmf-bench --bin ablation_solvers
//! ```

use hpc_nmf::prelude::*;
use nmf_bench::measured_dataset;
use nmf_data::DatasetKind;
use std::time::Instant;

fn main() {
    let p = 8usize;
    let k = 16usize;
    let iters = 20usize;

    for kind in [DatasetKind::Ssyn, DatasetKind::Dsyn] {
        let data = measured_dataset(kind, 45);
        let (m, n) = data.input.shape();
        println!(
            "\n=== solver ablation on {} {}x{} (p={p}, k={k}) ===",
            kind.name(),
            m,
            n
        );
        println!(
            "{:<6} {:>12} {:>12} {:>14} {:>14} {:>10}",
            "solver", "iters", "sec/iter", "objective", "rel_error", "comm %"
        );
        let mut results = Vec::new();
        for solver in SolverKind::ALL {
            let t0 = Instant::now();
            let out = factorize(
                &data.input,
                p,
                Algo::Hpc2D,
                &NmfConfig::new(k).with_max_iters(iters).with_solver(solver),
            );
            let wall = t0.elapsed().as_secs_f64();
            let comm_time: f64 = out
                .iters
                .iter()
                .map(|r| r.comm.total_time().as_secs_f64())
                .sum();
            let compute_time: f64 = out
                .iters
                .iter()
                .map(|r| r.compute.total().as_secs_f64())
                .sum();
            let comm_pct = 100.0 * comm_time / (comm_time + compute_time).max(1e-12);
            println!(
                "{:<6} {:>12} {:>12.4} {:>14.6e} {:>14.4} {:>9.1}%",
                format!("{solver:?}"),
                out.iterations,
                wall / out.iterations.max(1) as f64,
                out.objective,
                out.rel_error,
                comm_pct
            );
            results.push((solver, out.objective));
        }
        let bpp = results
            .iter()
            .find(|(s, _)| *s == SolverKind::Bpp)
            .unwrap()
            .1;
        let best_cheap = results
            .iter()
            .filter(|(s, _)| *s != SolverKind::Bpp)
            .map(|&(_, o)| o)
            .fold(f64::INFINITY, f64::min);
        println!(
            "after {iters} iterations BPP objective is {:.2}% of the best cheap solver's",
            100.0 * bpp / best_cheap
        );
    }
}
