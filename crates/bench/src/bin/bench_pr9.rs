//! PR9 evidence run: the CSC forward-traversal `Aᵀ·W` kernel against
//! the CSR transposed pass it replaced, on the two sparse regimes the
//! paper cares about — an SSYN-like Erdős–Rényi matrix (uniform ~115
//! nnz/row) and a webbase-like power-law graph (heavy-tailed rows) —
//! plus the one-time cost the sharing layer amortizes (CSC build) and
//! the extraction counts a rank sweep saves through [`SharedInput`].
//!
//! Both kernels produce bit-identical output (asserted here, proven
//! property-wide in `crates/sparse/tests/csc_props.rs`), so the medians
//! compare pure traversal orientation. Writes `BENCH_PR9.json` (or the
//! path in `BENCH_PR9_OUT`). `NMF_BENCH_QUICK=1` shrinks shapes and
//! repeats so CI can smoke the run.

use hpc_nmf::prelude::*;
use nmf_matrix::rng::Fill;
use nmf_matrix::Mat;
use nmf_sparse::gen::{chung_lu_power_law, erdos_renyi};
use nmf_sparse::{csc_chosen, spmm_at_dense_csc_into, spmm_at_dense_into, CscView, Csr};
use std::io::Write as _;
use std::time::Instant;

fn quick() -> bool {
    std::env::var("NMF_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The bench shapes: one per regime of the adaptive `Aᵀ·W` dispatch.
///
/// * `ssyn-*` and `webbase-*` have cache-resident outputs — the regime
///   the CSR transposed pass owns (the dispatcher keeps routing them
///   there; their sub-1 ratios are recorded as the honest reason why).
/// * `wide-*` is the term-document-like regime — outputs larger than
///   the last-level cache — where the CSR pass scatters into DRAM and
///   the CSC forward traversal is the measured win.
fn make_shapes() -> Vec<(&'static str, Csr, &'static [usize], usize)> {
    let s = if quick() { 4 } else { 1 };
    let reps = if quick() { 3 } else { 9 };
    let wide_reps = if quick() { 3 } else { 5 };
    vec![
        (
            "ssyn-8640x5760",
            erdos_renyi(8640 / s, 5760 / s, 0.02, 17),
            &[8usize, 32][..],
            reps,
        ),
        (
            "webbase-16k-1m",
            chung_lu_power_law(16384 / s, 1_000_000 / (s * s), 2.1, 29),
            &[8, 32][..],
            reps,
        ),
        (
            "wide-16384x1500000",
            erdos_renyi(16384 / s, 1_500_000 / s, 1e-3, 41),
            &[32][..],
            wide_reps,
        ),
        (
            "wide-8192x2000000",
            erdos_renyi(8192 / s, 2_000_000 / s, 1e-3, 43),
            &[32][..],
            wide_reps,
        ),
    ]
}

/// Median of `reps` timed runs of `f`, seconds.
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let mut cases = Vec::new();

    for (name, a, ks, reps) in make_shapes() {
        let t0 = Instant::now();
        let csc = CscView::from_csr(&a);
        let csc_build_s = t0.elapsed().as_secs_f64();
        for &k in ks {
            let w = Mat::uniform(a.nrows(), k, 7);
            let mut y_csr = Mat::zeros(a.ncols(), k);
            let mut y_csc = Mat::zeros(a.ncols(), k);
            // Warm-up + the bit-identity check the speedup rests on.
            spmm_at_dense_into(&a, &w, &mut y_csr);
            spmm_at_dense_csc_into(&a, &csc, &w, &mut y_csc);
            assert!(
                y_csr
                    .as_slice()
                    .iter()
                    .zip(y_csc.as_slice())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "{name} k={k}: kernels disagree"
            );
            let csr_s = median_secs(reps, || spmm_at_dense_into(&a, &w, &mut y_csr));
            let csc_s = median_secs(reps, || spmm_at_dense_csc_into(&a, &csc, &w, &mut y_csc));
            let routed_csc = csc_chosen(a.ncols(), k);
            println!(
                "{name:24} k={k:2}: csr {csr_s:.6}s  csc {csc_s:.6}s  speedup {:.2}x  routed→{}",
                csr_s / csc_s,
                if routed_csc { "csc" } else { "csr" }
            );
            cases.push(format!(
                "{{\"shape\":\"{name}\",\"m\":{},\"n\":{},\"nnz\":{},\"k\":{k},\
                 \"csr_transposed_seconds\":{csr_s:.6},\"csc_forward_seconds\":{csc_s:.6},\
                 \"speedup\":{:.4},\"csc_build_seconds\":{csc_build_s:.6},\
                 \"engine_routes_to\":\"{}\"}}",
                a.nrows(),
                a.ncols(),
                a.nnz(),
                csr_s / csc_s,
                if routed_csc { "csc" } else { "csr" }
            ));
        }
    }

    // Extraction sharing: a 3-value rank sweep over one SharedInput
    // shards the matrix exactly once (the tentpole's acceptance count).
    let shared = SharedInput::new(Input::Sparse(erdos_renyi(1728, 1152, 0.02, 3)));
    for k in [4usize, 8, 12] {
        let mut model = Nmf::on_shared(&shared)
            .rank(k)
            .ranks(4)
            .algo(Algo::Hpc2D)
            .max_iters(2)
            .build()
            .expect("valid request");
        model.run();
    }
    println!(
        "rank sweep over 3 k values: {} extraction(s)",
        shared.extractions()
    );

    let out = std::env::var("BENCH_PR9_OUT").unwrap_or_else(|_| "BENCH_PR9.json".into());
    let json = format!(
        "{{\n  \"bench\": \"csc_kernel_vs_csr_transposed\",\n  \"quick\": {},\n  \"cases\": [\n    {}\n  ],\n  \"shared_input\": {{\"rank_sweep_ks\": [4, 8, 12], \"extractions\": {}}}\n}}\n",
        quick(),
        cases.join(",\n    "),
        shared.extractions()
    );
    let mut f = std::fs::File::create(&out).expect("create output");
    f.write_all(json.as_bytes()).expect("write output");
    println!("wrote {out}");
}
