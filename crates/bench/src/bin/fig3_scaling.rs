//! Figure 3 (b, d, f, h): strong scaling — per-iteration time breakdown
//! vs processor count at fixed k = 50, for all three algorithms on all
//! four datasets.
//!
//! Section A: measured runs at machine-feasible rank counts.
//! Section B: paper-scale model at the paper's p ∈ {24, 96, 216, 384, 600}.
//!
//! ```sh
//! cargo run --release -p nmf-bench --bin fig3_scaling
//! ```

use hpc_nmf::prelude::*;
use nmf_bench::{measure, measured_dataset, model_row, print_table, Row, PAPER_ALGOS};
use nmf_data::{DatasetKind, PerfModel};

fn main() {
    let k = 50usize;
    let iters = 3;
    let ps_measured = [4usize, 8, 16];
    let ps_paper = [24usize, 96, 216, 384, 600];

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!("Figure 3 (b/d/f/h): strong scaling at k = {k}");
    println!("Section A: measured on this machine (scaled datasets)");
    println!(
        "NOTE: this host exposes {cores} hardware thread(s); virtual ranks timeshare them, \
         so measured wall-clock speedup saturates at ~{cores}x.\n\
         The *work distribution* (per-rank task times shrinking with p) and the counted \
         communication are still meaningful; Section B gives the paper-scale shape."
    );
    for kind in DatasetKind::ALL {
        let data = measured_dataset(kind, 43);
        let (m, n) = data.input.shape();
        let k_used = k.min(m.min(n) / 2).max(2);
        let mut rows: Vec<(String, Row)> = Vec::new();
        for algo in PAPER_ALGOS {
            for &p in &ps_measured {
                let row = measure(&data.input, p, algo, k_used, iters);
                rows.push((format!("{:<12} p={p}", algo.name()), row));
            }
        }
        print_table(
            &format!("{} {}x{} measured, k={k_used}", kind.name(), m, n),
            "",
            &rows,
        );
        // Parallel speedup of HPC-NMF-2D from the smallest to largest p.
        let lo = rows
            .iter()
            .find(|(l, _)| l.starts_with("HPC-NMF-2D") && l.ends_with("p=4"))
            .map(|(_, r)| r.total());
        let hi = rows
            .iter()
            .find(|(l, _)| l.starts_with("HPC-NMF-2D") && l.ends_with("p=16"))
            .map(|(_, r)| r.total());
        if let (Some(lo), Some(hi)) = (lo, hi) {
            println!(
                "{}: HPC-NMF-2D measured wall-clock ratio p=4 -> p=16: {:.1}x \
                 (ideal 4x with >=16 cores; ~1x expected on {cores} core(s))",
                kind.name(),
                lo / hi
            );
        }
    }

    println!("\nSection B: paper-scale model (paper dims, Edison-like machine)");
    let pm = PerfModel::default();
    for kind in DatasetKind::ALL {
        let mut rows: Vec<(String, Row)> = Vec::new();
        for algo in PAPER_ALGOS {
            for &p in &ps_paper {
                rows.push((
                    format!("{:<12} p={p}", algo.name()),
                    model_row(&pm, kind, algo, p, k),
                ));
            }
        }
        print_table(
            &format!("{} modeled, k={k}", kind.name()),
            " (modeled)",
            &rows,
        );

        let naive24 = model_row(&pm, kind, Algo::Naive, 24, k).total();
        let naive600 = model_row(&pm, kind, Algo::Naive, 600, k).total();
        let hpc24 = model_row(&pm, kind, Algo::Hpc2D, 24, k).total();
        let hpc600 = model_row(&pm, kind, Algo::Hpc2D, 600, k).total();
        println!(
            "{}: 24->600 cores speedup — Naive {:.1}x, HPC-NMF-2D {:.1}x (ideal 25x)",
            kind.name(),
            naive24 / naive600,
            hpc24 / hpc600,
        );
    }
}
