//! Load generator for the `nmf_serve` multi-tenant serving layer.
//!
//! Embeds a server (in-process channel transport, so the measurement is
//! of the serving core, not socket syscalls), drives N concurrent
//! tenants from N client threads, and records per-tenant throughput plus
//! request-latency percentiles into a JSON report.
//!
//! ```sh
//! cargo run --release -p nmf_bench --bin serve_loadgen            # full run
//! cargo run --release -p nmf_bench --bin serve_loadgen -- --out BENCH_PR8.json
//! NMF_LOADGEN_QUICK=1 cargo run -p nmf_bench --bin serve_loadgen  # CI smoke
//! ```
//!
//! Each tenant submits a burst of identical jobs, then polls status
//! round-robin until all of its jobs finish, fetching factors at the
//! end. Every request's wall time is recorded; the report carries
//! p50/p95/p99/max per tenant and aggregate, plus the fairness spread
//! (max/min completed steps across tenants), which the scheduler's
//! per-tenant budget should keep near 1.

use nmf_serve::prelude::*;
use std::time::{Duration, Instant};

struct LoadConfig {
    tenants: usize,
    jobs_per_tenant: usize,
    iters_per_job: usize,
    m: usize,
    n: usize,
    k: usize,
}

impl LoadConfig {
    fn from_env() -> LoadConfig {
        if std::env::var("NMF_LOADGEN_QUICK").is_ok() {
            LoadConfig {
                tenants: 8,
                jobs_per_tenant: 1,
                iters_per_job: 4,
                m: 24,
                n: 16,
                k: 3,
            }
        } else {
            LoadConfig {
                tenants: 8,
                jobs_per_tenant: 4,
                iters_per_job: 30,
                m: 96,
                n: 64,
                k: 6,
            }
        }
    }
}

struct TenantResult {
    tenant: String,
    requests: u64,
    jobs_finished: u64,
    steps_completed: u64,
    wall: Duration,
    latencies_us: Vec<u64>,
}

fn spec(cfg: &LoadConfig, seed: u64) -> JobSpec {
    JobSpec {
        source: JobSource::Dense {
            m: cfg.m,
            n: cfg.n,
            data: (0..cfg.m * cfg.n)
                .map(|i| ((i as u64 * 31 + seed * 7 + 3) % 17) as f64 + 0.5)
                .collect(),
        },
        k: cfg.k,
        ranks: 1,
        algo: hpc_nmf::harness::Algo::Sequential,
        solver: nmf_nls::SolverKind::Bpp,
        max_iters: cfg.iters_per_job,
        seed,
        tol: None,
    }
}

/// One tenant's whole session: submit a burst, poll to completion,
/// fetch factors, read final stats. Every round trip is timed.
fn tenant_session(
    tenant: String,
    connector: ChannelConnector,
    cfg: &LoadConfig,
) -> Result<TenantResult, ServeError> {
    let mut client = Client::new(Box::new(connector.connect()?));
    let mut latencies_us = Vec::new();
    let mut requests = 0u64;
    let t0 = Instant::now();
    let mut timed = |f: &mut dyn FnMut(&mut Client) -> Result<(), ServeError>,
                     client: &mut Client|
     -> Result<(), ServeError> {
        let rt = Instant::now();
        f(client)?;
        latencies_us.push(rt.elapsed().as_micros() as u64);
        requests += 1;
        Ok(())
    };

    let mut jobs = Vec::new();
    for j in 0..cfg.jobs_per_tenant {
        let spec = spec(cfg, j as u64 + 1);
        timed(
            &mut |c| {
                jobs.push(c.submit(&tenant, &spec)?);
                Ok(())
            },
            &mut client,
        )?;
    }

    // Poll jobs round-robin until all settle.
    let mut open: Vec<u64> = jobs.clone();
    while !open.is_empty() {
        let mut still_open = Vec::new();
        for &job in &open {
            let mut live = false;
            timed(
                &mut |c| {
                    let st = c.status(&tenant, job)?;
                    live = matches!(st.phase, JobPhase::Queued | JobPhase::Running);
                    Ok(())
                },
                &mut client,
            )?;
            if live {
                still_open.push(job);
            }
        }
        open = still_open;
        if !open.is_empty() {
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    for &job in &jobs {
        timed(
            &mut |c| {
                let (w, h) = c.factors(&tenant, job)?;
                assert_eq!(w.shape(), (cfg.m, cfg.k));
                assert_eq!(h.shape(), (cfg.k, cfg.n));
                Ok(())
            },
            &mut client,
        )?;
    }
    let report = client.tenant_stats(&tenant)?;
    let wall = t0.elapsed();
    Ok(TenantResult {
        tenant,
        requests,
        jobs_finished: report.jobs_finished,
        steps_completed: report.steps_completed,
        wall,
        latencies_us,
    })
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn latency_json(latencies: &mut [u64]) -> String {
    latencies.sort_unstable();
    format!(
        "{{\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"max_us\":{},\"count\":{}}}",
        percentile(latencies, 0.50),
        percentile(latencies, 0.95),
        percentile(latencies, 0.99),
        latencies.last().copied().unwrap_or(0),
        latencies.len()
    )
}

fn main() {
    let cfg = LoadConfig::from_env();
    let out_path = {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut out = "BENCH_PR8.json".to_string();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--out" => {
                    out = it.next().cloned().unwrap_or_else(|| {
                        eprintln!("error: missing value for --out");
                        std::process::exit(2);
                    })
                }
                other => {
                    eprintln!("error: unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        out
    };

    let (listener, connector) = channel_listener();
    let server = Server::new(ServerConfig {
        default_quota: TenantQuota {
            max_concurrent_jobs: cfg.jobs_per_tenant,
            steps_per_quantum: 8,
            ..TenantQuota::default()
        },
        ..ServerConfig::default()
    });
    let core = std::thread::spawn(move || server.run(Box::new(listener)).expect("serve"));

    let t0 = Instant::now();
    let handles: Vec<_> = (0..cfg.tenants)
        .map(|i| {
            let tenant = format!("tenant-{i:02}");
            let connector = connector.clone();
            let cfg = LoadConfig {
                ..LoadConfig::from_env()
            };
            std::thread::spawn(move || tenant_session(tenant, connector, &cfg))
        })
        .collect();
    let mut results: Vec<TenantResult> = handles
        .into_iter()
        .map(|h| h.join().expect("tenant thread").expect("tenant session"))
        .collect();
    let bench_wall = t0.elapsed();

    // Shut the server down and collect its counters.
    let mut admin = Client::new(Box::new(connector.connect().expect("dial")));
    admin.shutdown().expect("shutdown");
    let stats = core.join().expect("core thread");

    results.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    let total_steps: u64 = results.iter().map(|r| r.steps_completed).sum();
    let total_requests: u64 = results.iter().map(|r| r.requests).sum();
    let max_steps = results.iter().map(|r| r.steps_completed).max().unwrap_or(0);
    let min_steps = results.iter().map(|r| r.steps_completed).min().unwrap_or(0);

    let mut all_latencies: Vec<u64> = results
        .iter()
        .flat_map(|r| r.latencies_us.iter().copied())
        .collect();

    let mut s = String::with_capacity(4096);
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"bench\": \"serve_loadgen\",\n  \"tenants\": {},\n  \"jobs_per_tenant\": {},\n  \
         \"iters_per_job\": {},\n  \"input\": [{}, {}],\n  \"k\": {},\n",
        cfg.tenants, cfg.jobs_per_tenant, cfg.iters_per_job, cfg.m, cfg.n, cfg.k
    ));
    s.push_str(&format!(
        "  \"wall_seconds\": {:.6},\n  \"total_requests\": {},\n  \"total_steps\": {},\n  \
         \"server\": {{\"quanta\": {}, \"connections\": {}, \"jobs_finished\": {}}},\n",
        bench_wall.as_secs_f64(),
        total_requests,
        total_steps,
        stats.quanta,
        stats.connections,
        stats.jobs_finished
    ));
    s.push_str(&format!(
        "  \"fairness\": {{\"max_steps\": {max_steps}, \"min_steps\": {min_steps}, \
         \"spread\": {:.4}}},\n",
        if min_steps > 0 {
            max_steps as f64 / min_steps as f64
        } else {
            f64::INFINITY
        }
    ));
    s.push_str(&format!(
        "  \"latency\": {},\n  \"per_tenant\": [\n",
        latency_json(&mut all_latencies)
    ));
    let n_results = results.len();
    for (i, r) in results.iter_mut().enumerate() {
        s.push_str(&format!(
            "    {{\"tenant\": \"{}\", \"requests\": {}, \"jobs_finished\": {}, \
             \"steps\": {}, \"wall_seconds\": {:.6}, \"requests_per_second\": {:.1}, \
             \"latency\": {}}}{}\n",
            r.tenant,
            r.requests,
            r.jobs_finished,
            r.steps_completed,
            r.wall.as_secs_f64(),
            r.requests as f64 / r.wall.as_secs_f64().max(1e-9),
            latency_json(&mut r.latencies_us),
            if i + 1 < n_results { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");

    std::fs::write(&out_path, &s).expect("write report");
    println!("{s}");
    println!("report written to {out_path}");

    // Sanity gates so CI fails loudly instead of publishing nonsense.
    assert_eq!(
        results.len(),
        cfg.tenants,
        "every tenant must finish its session"
    );
    for r in &results {
        assert_eq!(
            r.jobs_finished, cfg.jobs_per_tenant as u64,
            "{}: all jobs must finish",
            r.tenant
        );
    }
    assert!(
        min_steps > 0 && max_steps as f64 / min_steps as f64 <= 2.0,
        "fairness spread above 2x: max {max_steps}, min {min_steps}"
    );
}
