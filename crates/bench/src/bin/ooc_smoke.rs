//! Out-of-core smoke: proves the mmap ingest path factorizes a matrix
//! whose in-RAM ingest cannot run under the same address-space limit,
//! and that the factors it produces are bit-identical to an unlimited
//! resident run.
//!
//! Three invocations, driven by CI (see `.github/workflows/ci.yml`):
//!
//! 1. `ooc_smoke prepare --file A.nmfs --ref ref.txt` — no rlimit.
//!    Generates the matrix, writes the NMFS file, factorizes the
//!    resident copy, and records the reference digest (objective bits +
//!    an FNV-1a hash over the factor bit patterns).
//! 2. `ooc_smoke run --mode resident --file A.nmfs --ref ref.txt`
//!    under `ulimit -v` — expected to DIE: reading the file back plus
//!    the extracted rank blocks exceeds the limit.
//! 3. `ooc_smoke run --mode mmap --file A.nmfs --ref ref.txt` under the
//!    same `ulimit -v` — must pass: panels stream through a small
//!    mapped window, only the rank blocks go resident, and the digest
//!    must equal the reference exactly.
//!
//! The factorization parameters are fixed so all three runs describe
//! the same trajectory; any drift shows up as a digest mismatch.

use hpc_nmf::prelude::*;
use nmf_sparse::gen::erdos_renyi;
use nmf_sparse::io::write_csr_binary_path;
use nmf_sparse::{io::read_csr_binary, Csr};
use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

// ~10.8M nonzeros: a 173 MB NMFS file whose resident ingest peaks well
// above the CI rlimit while the mmap ingest stays well below it.
const M: usize = 90_000;
const N: usize = 60_000;
const DENSITY: f64 = 2e-3;
const GEN_SEED: u64 = 41;

const K: usize = 8;
const RANKS: usize = 4;
const ITERS: usize = 3;
const FIT_SEED: u64 = 11;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ooc_smoke prepare --file A.nmfs --ref ref.txt\n       \
         ooc_smoke run --mode mmap|resident --file A.nmfs --ref ref.txt"
    );
    ExitCode::from(2)
}

fn flag(argv: &[String], name: &str) -> Option<String> {
    argv.iter()
        .position(|a| a == name)
        .and_then(|i| argv.get(i + 1).cloned())
}

/// FNV-1a over the bit patterns of both factors plus the objective —
/// one line of hex that pins the whole trajectory.
fn digest(model: &Model) -> String {
    let (w, h) = model.factors();
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bits: u64| {
        for byte in bits.to_le_bytes() {
            acc ^= byte as u64;
            acc = acc.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for v in w.as_slice().iter().chain(h.as_slice()) {
        eat(v.to_bits());
    }
    eat(model.objective().to_bits());
    format!("{acc:016x}")
}

fn factorize(shared: &SharedInput) -> Model {
    let mut model = Nmf::on_shared(shared)
        .rank(K)
        .ranks(RANKS)
        .algo(Algo::Hpc2D)
        .max_iters(ITERS)
        .seed(FIT_SEED)
        .build()
        .expect("valid request");
    model.run();
    model
}

fn vm_peak() -> String {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmPeak"))
                .map(str::to_string)
        })
        .unwrap_or_else(|| "VmPeak unknown".into())
}

fn prepare(argv: &[String]) -> ExitCode {
    let (Some(file), Some(refp)) = (flag(argv, "--file"), flag(argv, "--ref")) else {
        return usage();
    };
    let a = erdos_renyi(M, N, DENSITY, GEN_SEED);
    write_csr_binary_path(&a, &file).expect("write NMFS");
    let bytes = std::fs::metadata(&file).expect("stat").len();
    println!(
        "wrote {file}: {}x{}, {} nnz, {bytes} bytes",
        a.nrows(),
        a.ncols(),
        a.nnz()
    );

    let shared = SharedInput::new(Input::Sparse(a));
    let model = factorize(&shared);
    let d = digest(&model);
    std::fs::write(&refp, format!("{d}\n")).expect("write ref");
    println!("reference digest {d}  ({})", vm_peak());
    ExitCode::SUCCESS
}

fn run(argv: &[String]) -> ExitCode {
    let (Some(mode), Some(file), Some(refp)) = (
        flag(argv, "--mode"),
        flag(argv, "--file"),
        flag(argv, "--ref"),
    ) else {
        return usage();
    };
    let shared = match mode.as_str() {
        "mmap" => SharedInput::open_mmap(&file).expect("open NMFS via mmap"),
        "resident" => {
            let csr: Csr = read_csr_binary(BufReader::new(File::open(&file).expect("open")))
                .expect("read NMFS resident");
            SharedInput::new(Input::Sparse(csr))
        }
        _ => return usage(),
    };
    let model = factorize(&shared);
    let got = digest(&model);
    let want = std::fs::read_to_string(&refp).expect("read ref");
    let want = want.trim();
    println!("{mode} digest {got}  (want {want}, {})", vm_peak());
    if got == want {
        println!("ooc smoke [{mode}]: factors bit-identical to resident reference");
        ExitCode::SUCCESS
    } else {
        eprintln!("ooc smoke [{mode}]: digest mismatch");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("prepare") => prepare(&argv),
        Some("run") => run(&argv),
        _ => usage(),
    }
}
