//! Multiplicative update (Lee & Seung, NIPS 2001).
//!
//! One outer ANLS iteration applies the rule (paper Eq. 3), here in the
//! row-wise layout:
//!
//! ```text
//!   Xᵢⱼ ← Xᵢⱼ · CtBᵢⱼ / (X·G)ᵢⱼ
//! ```
//!
//! The update never leaves the nonnegative orthant (given nonnegative
//! input data) and monotonically decreases the NLS objective, but
//! converges slowly — which is exactly why the paper prefers BPP and why
//! MU makes communication the dominant cost (§7).

use crate::NlsSolver;
use nmf_matrix::{matmul_tb_into, Mat};

/// Multiplicative-update solver (one step per call).
#[derive(Clone, Debug)]
pub struct Mu {
    /// Denominator floor guarding division by zero.
    pub eps: f64,
    /// Reused denominator buffer (`X·G`, r×k); buffer reuse only.
    pub scratch: Mat,
}

impl Default for Mu {
    fn default() -> Self {
        Mu {
            eps: 1e-16,
            scratch: Mat::default(),
        }
    }
}

impl NlsSolver for Mu {
    fn update(&mut self, gram: &Mat, ctb: &Mat, x: &mut Mat) {
        assert_eq!(x.shape(), ctb.shape());
        assert_eq!(gram.nrows(), x.ncols());
        // Denominator X·G (G symmetric, so X·Gᵀ = X·G); 2rk² flops, the
        // "extra computation" the paper counts for MU.
        self.scratch.resize(x.nrows(), x.ncols());
        let den = &mut self.scratch;
        matmul_tb_into(x, gram, den);
        // MU cannot escape exact zeros; the conventional fix (also in
        // MATLAB's nnmf and the paper's reference implementations) is to
        // floor the numerator at 0 — the input CtB may carry negative
        // entries when the data matrix has them, and clamping keeps the
        // iterate nonnegative.
        for ((xv, &num), &d) in x
            .as_mut_slice()
            .iter_mut()
            .zip(ctb.as_slice())
            .zip(den.as_slice())
        {
            let n = num.max(0.0);
            *xv *= n / d.max(self.eps);
        }
    }

    fn name(&self) -> &'static str {
        "MU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nls_objective;
    use nmf_matrix::rng::Fill;
    use nmf_matrix::{gram, matmul_ta};

    fn nonneg_instance(k: usize, r: usize, seed: u64) -> (Mat, Mat) {
        let c = Mat::uniform(3 * k, k, seed);
        let b = Mat::uniform(3 * k, r, seed + 1);
        (gram(&c), matmul_ta(&b, &c))
    }

    #[test]
    fn objective_decreases_monotonically() {
        let (g, ctb) = nonneg_instance(6, 10, 51);
        let mut x = Mat::uniform(10, 6, 52);
        let mut mu = Mu::default();
        let mut prev = nls_objective(&g, &ctb, &x);
        for _ in 0..25 {
            mu.update(&g, &ctb, &mut x);
            let cur = nls_objective(&g, &ctb, &x);
            assert!(
                cur <= prev + 1e-9 * prev.abs().max(1.0),
                "MU increased objective"
            );
            prev = cur;
        }
    }

    #[test]
    fn preserves_nonnegativity() {
        let (g, ctb) = nonneg_instance(5, 8, 53);
        let mut x = Mat::uniform(8, 5, 54);
        let mut mu = Mu::default();
        for _ in 0..10 {
            mu.update(&g, &ctb, &mut x);
            assert!(x.all_nonnegative());
            assert!(x.all_finite());
        }
    }

    #[test]
    fn fixed_point_of_exact_solution() {
        // If X already satisfies X·G = CtB with X > 0, the ratio is 1 and
        // MU leaves it unchanged.
        let k = 4;
        let g = {
            let c = Mat::uniform(12, k, 55);
            gram(&c)
        };
        let x_true = Mat::uniform(6, k, 56);
        let ctb = nmf_matrix::matmul_tb(&x_true, &g);
        let mut x = x_true.clone();
        Mu::default().update(&g, &ctb, &mut x);
        assert!(x.max_abs_diff(&x_true) < 1e-10);
    }

    #[test]
    fn zeros_stay_zero() {
        let (g, ctb) = nonneg_instance(4, 3, 57);
        let mut x = Mat::zeros(3, 4);
        Mu::default().update(&g, &ctb, &mut x);
        assert_eq!(x, Mat::zeros(3, 4));
    }
}
