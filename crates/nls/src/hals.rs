//! Hierarchical Alternating Least Squares (Cichocki et al.).
//!
//! One sweep of block coordinate descent over the `k` components (paper
//! Eq. 4), in the row-wise layout: for component `j`,
//!
//! ```text
//!   X[:,j] ← max(0, (CtB[:,j] − X·G[:,j] + X[:,j]·Gⱼⱼ) / Gⱼⱼ)
//! ```
//!
//! where components are updated in order so later components see the
//! fresh values of earlier ones. Cost per sweep is `2rk²` flops — the
//! same "extra computation" term as MU, but HALS converges much faster
//! per sweep in practice.

use crate::NlsSolver;
use nmf_matrix::gemm::dot;
use nmf_matrix::Mat;

/// HALS solver (one block-coordinate sweep per call).
#[derive(Clone, Debug)]
pub struct Hals {
    /// Components whose Gram diagonal falls below this are reset to zero
    /// (a dead component; standard guard).
    pub eps: f64,
}

impl Default for Hals {
    fn default() -> Self {
        Hals { eps: 1e-14 }
    }
}

impl NlsSolver for Hals {
    fn update(&mut self, gram: &Mat, ctb: &Mat, x: &mut Mat) {
        assert_eq!(x.shape(), ctb.shape());
        let k = x.ncols();
        assert_eq!(gram.shape(), (k, k));
        let r = x.nrows();
        for j in 0..k {
            let gjj = gram[(j, j)];
            // Symmetric G: column j equals row j, which is contiguous.
            let gj = gram.row(j);
            if gjj <= self.eps {
                for i in 0..r {
                    x[(i, j)] = 0.0;
                }
                continue;
            }
            for i in 0..r {
                let xi = x.row_mut(i);
                // residual = CtB[i,j] − ⟨x_i, G[:,j]⟩ + x_ij·G_jj
                let xg = dot(xi, gj);
                let v = (ctb[(i, j)] - xg + xi[j] * gjj) / gjj;
                xi[j] = v.max(0.0);
            }
        }
    }

    fn name(&self) -> &'static str {
        "HALS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nls_objective;
    use crate::reference::exhaustive_nnls;
    use nmf_matrix::rng::Fill;
    use nmf_matrix::{gram, matmul_ta};

    fn instance(k: usize, r: usize, seed: u64) -> (Mat, Mat) {
        let c = Mat::uniform(3 * k, k, seed);
        let b = Mat::uniform(3 * k, r, seed + 1);
        (gram(&c), matmul_ta(&b, &c))
    }

    #[test]
    fn objective_decreases_monotonically() {
        let (g, ctb) = instance(6, 10, 61);
        let mut x = Mat::uniform(10, 6, 62);
        let mut hals = Hals::default();
        let mut prev = nls_objective(&g, &ctb, &x);
        for _ in 0..25 {
            hals.update(&g, &ctb, &mut x);
            let cur = nls_objective(&g, &ctb, &x);
            assert!(
                cur <= prev + 1e-9 * prev.abs().max(1.0),
                "HALS increased objective"
            );
            prev = cur;
        }
    }

    #[test]
    fn converges_to_exhaustive_optimum() {
        // Coordinate descent on a strictly convex problem converges to
        // the global NNLS optimum; 200 sweeps on a tiny instance is ample.
        let (g, ctb) = instance(4, 3, 63);
        let mut x = Mat::uniform(3, 4, 64);
        let mut hals = Hals::default();
        for _ in 0..200 {
            hals.update(&g, &ctb, &mut x);
        }
        for i in 0..3 {
            let expect = exhaustive_nnls(&g, ctb.row(i));
            for j in 0..4 {
                assert!(
                    (x[(i, j)] - expect[j]).abs() < 1e-5,
                    "row {i}: got {:?}, expected {:?}",
                    x.row(i),
                    expect
                );
            }
        }
    }

    #[test]
    fn preserves_nonnegativity_and_finiteness() {
        let (g, ctb) = instance(5, 7, 65);
        let mut x = Mat::uniform(7, 5, 66);
        let mut hals = Hals::default();
        for _ in 0..10 {
            hals.update(&g, &ctb, &mut x);
            assert!(x.all_nonnegative());
            assert!(x.all_finite());
        }
    }

    #[test]
    fn dead_component_is_zeroed() {
        let mut g = Mat::eye(3);
        g[(2, 2)] = 0.0; // dead component
        let ctb = Mat::filled(4, 3, 1.0);
        let mut x = Mat::filled(4, 3, 0.5);
        Hals::default().update(&g, &ctb, &mut x);
        for i in 0..4 {
            assert_eq!(x[(i, 2)], 0.0);
            assert_eq!(x[(i, 0)], 1.0); // identity G: x = ctb
        }
    }
}
