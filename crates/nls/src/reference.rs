//! Brute-force NNLS reference for tests.
//!
//! Enumerates all `2^k` passive sets, solves the unconstrained system on
//! each, and returns the feasible solution that satisfies the KKT
//! conditions (falling back to the lowest-objective feasible candidate
//! under numerical ties). Exponential — for test-sized `k ≤ ~12` only.

use nmf_matrix::{solve_spd, Mat};

/// Exact solution of `min_{x≥0} xᵀGx − 2xᵀb` by exhaustive support
/// enumeration. `g` is `k×k` SPD, `b` has length `k`.
pub fn exhaustive_nnls(g: &Mat, b: &[f64]) -> Vec<f64> {
    let k = g.nrows();
    assert_eq!(g.ncols(), k);
    assert_eq!(b.len(), k);
    assert!(k <= 16, "exhaustive reference is exponential in k");

    let mut best: Option<(f64, Vec<f64>)> = None;
    let tol = 1e-9;
    for mask in 0u32..(1 << k) {
        let free: Vec<usize> = (0..k).filter(|&j| mask & (1 << j) != 0).collect();
        let f = free.len();
        let mut x = vec![0.0; k];
        if f > 0 {
            let mut gff = Mat::zeros(f, f);
            for (a, &ja) in free.iter().enumerate() {
                for (c, &jc) in free.iter().enumerate() {
                    gff[(a, c)] = g[(ja, jc)];
                }
            }
            let mut rhs = Mat::zeros(f, 1);
            for (a, &ja) in free.iter().enumerate() {
                rhs[(a, 0)] = b[ja];
            }
            let sol = match solve_spd(&gff, &rhs) {
                Ok(s) => s,
                Err(_) => continue,
            };
            for (a, &ja) in free.iter().enumerate() {
                x[ja] = sol[(a, 0)];
            }
        }
        // Primal feasibility.
        if x.iter().any(|&v| v < -tol) {
            continue;
        }
        // Dual feasibility: y = Gx − b ≥ 0 off the support.
        let mut feasible = true;
        for j in 0..k {
            let yj: f64 = (0..k).map(|l| g[(j, l)] * x[l]).sum::<f64>() - b[j];
            if mask & (1 << j) == 0 && yj < -tol {
                feasible = false;
                break;
            }
        }
        if !feasible {
            continue;
        }
        let obj: f64 = (0..k)
            .map(|i| x[i] * (0..k).map(|j| g[(i, j)] * x[j]).sum::<f64>() - 2.0 * x[i] * b[i])
            .sum();
        let x_clamped: Vec<f64> = x.iter().map(|&v| v.max(0.0)).collect();
        match &best {
            Some((bobj, _)) if *bobj <= obj => {}
            _ => best = Some((obj, x_clamped)),
        }
    }
    best.expect("strictly convex NNLS always has a KKT point").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmf_matrix::gram;
    use nmf_matrix::rng::Fill;

    #[test]
    fn unconstrained_interior_solution() {
        // G = I: solution is max(b, 0) componentwise.
        let g = Mat::eye(3);
        let x = exhaustive_nnls(&g, &[1.0, -2.0, 3.0]);
        assert_eq!(x, vec![1.0, 0.0, 3.0]);
    }

    #[test]
    fn kkt_holds_on_random_instances() {
        for seed in 0..10 {
            let c = Mat::gaussian(12, 4, 70 + seed);
            let mut g = gram(&c);
            for i in 0..4 {
                g[(i, i)] += 1e-6;
            }
            let b: Vec<f64> = Mat::gaussian(1, 4, 90 + seed).as_slice().to_vec();
            let x = exhaustive_nnls(&g, &b);
            for j in 0..4 {
                let yj: f64 = (0..4).map(|l| g[(j, l)] * x[l]).sum::<f64>() - b[j];
                assert!(x[j] >= 0.0);
                assert!(yj > -1e-6, "dual infeasible");
                assert!((x[j] * yj).abs() < 1e-5, "complementarity violated");
            }
        }
    }
}
