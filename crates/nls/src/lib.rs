//! Nonnegative least squares (NLS) solvers on normal equations.
//!
//! Both alternating updates in the ANLS framework reduce to many
//! independent single-right-hand-side NLS problems (paper Eq. 5):
//!
//! ```text
//!   min_{x ≥ 0} ‖Cx − b‖²
//! ```
//!
//! whose data enters only through the `k×k` Gram matrix `G = CᵀC` and the
//! vector `Cᵀb`. We adopt the layout used throughout the reproduction: the
//! right-hand sides are the **rows** of an `r×k` matrix `CtB` (row `i`
//! holds `Cᵀbᵢ`), and the unknowns are the rows of an `r×k` matrix `X`.
//! The `W`-update (`r = m/p` rows of `W`) and the `H`-update (`r = n/p`
//! columns of `H`, stored transposed) then share one code path.
//!
//! Three solvers implement [`NlsSolver`]:
//!
//! * [`Bpp`] — **Block Principal Pivoting** (Kim & Park 2011), the
//!   paper's solver of choice: an active-set-like method that swaps whole
//!   blocks of variables between the active and passive sets, with
//!   Murty's single-swap backup rule to guarantee termination. Includes
//!   the classic multi-RHS optimization of grouping rows that share a
//!   passive set so each distinct `G_FF` is factorized once.
//! * [`Mu`] — Lee & Seung's multiplicative update (one damped step per
//!   outer iteration).
//! * [`Hals`] — hierarchical alternating least squares (one sweep of
//!   block coordinate descent over the `k` components).
//!
//! [`reference::exhaustive_nnls`] solves the same problem by enumerating
//! all `2^k` active sets; tests use it as ground truth for small `k`.

pub mod active_set;
pub mod bpp;
pub mod hals;
pub mod mu;
pub mod reference;

use nmf_matrix::Mat;

pub use active_set::ActiveSet;
pub use bpp::Bpp;
pub use hals::Hals;
pub use mu::Mu;

/// A solver for the row-wise NLS problem
/// `minimize Σᵢ ‖xᵢ‖²_G − 2·xᵢᵀ·CtBᵢ  subject to X ≥ 0`.
///
/// `update` takes `&mut self` so solvers can keep reusable workspaces
/// (pivot states, grouping tables, factor buffers) across the one-call-
/// per-factor-per-iteration pattern of the ANLS drivers — the scratch is
/// buffer reuse only and must never carry *information* between calls
/// (every call's result is a pure function of `gram`, `ctb`, and `x`).
pub trait NlsSolver {
    /// Improves (or exactly solves, for BPP) `x` in place.
    ///
    /// * `gram` — `k×k` symmetric positive semidefinite `CᵀC`;
    /// * `ctb`  — `r×k`, row `i` is `Cᵀbᵢ`;
    /// * `x`    — `r×k` current iterate (must be nonnegative on entry).
    fn update(&mut self, gram: &Mat, ctb: &Mat, x: &mut Mat);

    /// Short name for reports ("BPP", "MU", "HALS").
    fn name(&self) -> &'static str;
}

/// The solver menu exposed by the NMF drivers (paper §4: "the parallel
/// algorithm ... can be easily extended for other algorithms such as MU
/// and HALS").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverKind {
    /// Block principal pivoting (exact NLS solve per outer iteration).
    Bpp,
    /// Multiplicative update.
    Mu,
    /// Hierarchical alternating least squares.
    Hals,
    /// Lawson–Hanson active set (exact, single-variable exchanges).
    ActiveSet,
}

impl SolverKind {
    /// Instantiates the solver with default settings.
    pub fn build(self) -> Box<dyn NlsSolver + Send> {
        match self {
            SolverKind::Bpp => Box::new(Bpp::default()),
            SolverKind::Mu => Box::new(Mu::default()),
            SolverKind::Hals => Box::new(Hals::default()),
            SolverKind::ActiveSet => Box::new(ActiveSet::default()),
        }
    }

    pub const ALL: [SolverKind; 4] = [
        SolverKind::Bpp,
        SolverKind::Mu,
        SolverKind::Hals,
        SolverKind::ActiveSet,
    ];
}

/// The (shifted) objective `Σᵢ xᵢᵀ·G·xᵢ − 2·xᵢᵀ·bᵢ`; differs from
/// `Σ‖Cxᵢ−bᵢ‖²` by the constant `Σ‖bᵢ‖²`, so it orders solutions
/// identically. Used by tests to verify monotonicity and optimality.
pub fn nls_objective(gram: &Mat, ctb: &Mat, x: &Mat) -> f64 {
    assert_eq!(x.shape(), ctb.shape());
    assert_eq!(gram.nrows(), x.ncols());
    let xg = nmf_matrix::matmul_tb(x, gram); // r×k, row i = G·xᵢ (G symmetric)
    let mut obj = 0.0;
    for i in 0..x.nrows() {
        let xi = x.row(i);
        let gxi = xg.row(i);
        let bi = ctb.row(i);
        for j in 0..x.ncols() {
            obj += xi[j] * gxi[j] - 2.0 * xi[j] * bi[j];
        }
    }
    obj
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmf_matrix::rng::Fill;
    use nmf_matrix::{gram, matmul_ta};

    #[test]
    fn objective_matches_residual_up_to_constant() {
        let c = Mat::gaussian(12, 4, 1);
        let b = Mat::gaussian(12, 3, 2);
        let g = gram(&c);
        let ctb = matmul_ta(&b, &c); // rows are Cᵀbᵢ: (BᵀC) is r×k
        let x = Mat::uniform(3, 4, 3);
        // Direct residual: Σᵢ ‖C xᵢ − bᵢ‖².
        let mut direct = 0.0;
        for i in 0..3 {
            for row in 0..12 {
                let mut cx = 0.0;
                for j in 0..4 {
                    cx += c[(row, j)] * x[(i, j)];
                }
                let d = cx - b[(row, i)];
                direct += d * d;
            }
        }
        let shifted = nls_objective(&g, &ctb, &x) + b.fro_norm_sq();
        assert!((direct - shifted).abs() < 1e-9 * direct.max(1.0));
    }

    #[test]
    fn solver_kinds_build() {
        for kind in SolverKind::ALL {
            let s = kind.build();
            assert!(!s.name().is_empty());
        }
    }
}
