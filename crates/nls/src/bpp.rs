//! Block Principal Pivoting for nonnegative least squares.
//!
//! Implements Kim & Park's algorithm (SISC 2011) for the KKT system of
//! `min_{x≥0} ‖Cx − b‖²` (paper Eq. 6): find complementary supports where
//!
//! ```text
//!   y = G·x − Cᵀb,   x ≥ 0,   y ≥ 0,   xᵀy = 0 .
//! ```
//!
//! Variables are partitioned into a *passive* set `F` (where `x` is free
//! and `y = 0`) and an *active* set (where `x = 0` and `y` is free). Each
//! iteration solves the unconstrained system on `F`, finds the infeasible
//! variables `V`, and exchanges them between sets — all at once while
//! progress is made (the "block" move), falling back to Murty's
//! single-variable rule (exchange only the largest infeasible index) when
//! the infeasibility count stops decreasing, which guarantees finite
//! termination.
//!
//! Multi-right-hand-side optimization: rows whose passive sets coincide
//! are solved together, so each distinct `G_FF` is factorized exactly
//! once per exchange round. The paper attributes BPP's practicality for
//! NMF precisely to this regime (`k ≪ min(m,n)`, thousands of RHS, few
//! distinct supports after the first iterations).
//!
//! ## Workspace reuse
//!
//! The solver is called once per factor per outer ANLS iteration with
//! identical shapes, so all pivoting state lives in a solver-held
//! [`BppScratch`]: the dual matrix `y`, the per-row pivot states, the
//! passive-set grouping index (a `HashMap` plus a pool of row-index
//! vectors whose allocations are recycled), and the per-group `G_FF` /
//! RHS / factor buffers. After the first call nothing in the hot path
//! allocates except pathological support churn that outgrows a buffer's
//! retained capacity.

use crate::NlsSolver;
use nmf_matrix::{cholesky_into, cholesky_solve_in_place, solve_spd, Mat};
use std::collections::HashMap;

/// Block-principal-pivoting solver.
#[derive(Clone, Debug)]
pub struct Bpp {
    /// Solve rows sharing a passive set with one factorization
    /// (ablation switch; `true` is the paper's configuration).
    pub group_columns: bool,
    /// Safety cap on exchange rounds; `3k` + slack always suffices in
    /// practice, and the cap guards against cycling under severe
    /// ill-conditioning.
    pub max_rounds: usize,
    /// Backup-rule budget: full-block exchanges allowed after the
    /// infeasibility count last improved (Kim & Park use 3).
    pub backup_budget: u32,
    /// Reused solver state (buffers only — carries no information
    /// between calls). Public so struct-update construction
    /// (`Bpp { group_columns: .., ..Bpp::default() }`) keeps working.
    pub scratch: BppScratch,
}

impl Default for Bpp {
    fn default() -> Self {
        Bpp {
            group_columns: true,
            max_rounds: 1000,
            backup_budget: 3,
            scratch: BppScratch::default(),
        }
    }
}

/// Per-row pivoting state.
#[derive(Clone, Debug)]
struct RowState {
    /// Bit `j` set ⇔ variable `j` is passive (free).
    passive: u128,
    /// Lowest infeasibility count seen (β in Kim & Park).
    best_infeasible: u32,
    /// Remaining full-exchange moves before the backup rule engages (α).
    budget: u32,
    done: bool,
}

/// Reusable buffers held by a [`Bpp`] solver across calls (see the
/// module docs). All fields are implementation detail.
#[derive(Clone, Debug, Default)]
pub struct BppScratch {
    /// Dual matrix `y = G·x − Cᵀb` (r×k).
    y: Mat,
    /// Incoming iterate, kept for the monotonicity guard (r×k).
    x_prev: Mat,
    states: Vec<RowState>,
    /// Passive-set mask → index into `group_rows`.
    group_of: HashMap<u128, usize>,
    /// Row-index pools, one per active group; allocations recycled.
    group_rows: Vec<Vec<usize>>,
    group_masks: Vec<u128>,
    n_groups: usize,
    /// Per-group solve buffers.
    support: SupportScratch,
}

/// Buffers for one passive-set solve (`G_FF`, its factor, the stacked
/// right-hand sides, the free-index list).
#[derive(Clone, Debug, Default)]
struct SupportScratch {
    free: Vec<usize>,
    gff: Mat,
    factor: Mat,
    rhs: Mat,
}

impl NlsSolver for Bpp {
    fn update(&mut self, gram: &Mat, ctb: &Mat, x: &mut Mat) {
        self.solve(gram, ctb, x);
    }

    fn name(&self) -> &'static str {
        "BPP"
    }
}

impl Bpp {
    /// Solves `min_{X≥0} Σᵢ ‖·‖`, exactly when `gram` is well
    /// conditioned.
    ///
    /// When `gram` is (near-)singular — common once ANLS converges onto a
    /// lower-rank solution — the passive-set solves become ambiguous and
    /// plain BPP can terminate at a point *worse* than the incoming
    /// iterate. Like production ANLS codes, we guard monotonicity: if the
    /// fresh solve does not improve the (nonnegative, feasible) incoming
    /// `x`, the incoming iterate is kept.
    pub fn solve(&mut self, gram: &Mat, ctb: &Mat, x: &mut Mat) {
        let (r, k) = x.shape();
        self.scratch.x_prev.resize(r, k);
        self.scratch.x_prev.copy_from(x);
        self.solve_cold(gram, ctb, x);
        if self.scratch.x_prev.all_nonnegative() {
            let f_new = crate::nls_objective(gram, ctb, x);
            let f_in = crate::nls_objective(gram, ctb, &self.scratch.x_prev);
            if f_new > f_in {
                x.copy_from(&self.scratch.x_prev);
            }
        }
    }

    /// The raw cold-start pivoting loop, without the monotonicity guard.
    fn solve_cold(&mut self, gram: &Mat, ctb: &Mat, x: &mut Mat) {
        let k = gram.nrows();
        assert_eq!(gram.ncols(), k, "gram must be square");
        assert!(k <= 128, "BPP implementation supports k <= 128");
        assert_eq!(x.shape(), ctb.shape(), "x and ctb must have equal shapes");
        assert_eq!(x.ncols(), k, "x must have k columns");
        let r = x.nrows();
        if r == 0 || k == 0 {
            return;
        }
        let scr = &mut self.scratch;

        // Initial partition: x = 0, y = −Cᵀb, all variables active.
        // (Kim & Park's standard cold start; warm starting from the
        // support of the incoming x is possible but changes iterate
        // trajectories, which would break the paper's same-computations
        // initialization guarantee, so we keep the cold start.)
        x.as_mut_slice().fill(0.0);
        scr.y.resize(r, k);
        for (yv, &cv) in scr.y.as_mut_slice().iter_mut().zip(ctb.as_slice()) {
            *yv = -cv;
        }

        scr.states.clear();
        scr.states.extend((0..r).map(|_| RowState {
            passive: 0,
            best_infeasible: k as u32 + 1,
            budget: self.backup_budget,
            done: false,
        }));

        for _round in 0..self.max_rounds {
            // Phase 1: per-row infeasibility detection and set exchange.
            let mut any_pending = false;
            for i in 0..r {
                let st = &mut scr.states[i];
                if st.done {
                    continue;
                }
                let mut infeasible: u128 = 0;
                let xi = x.row(i);
                let yi = scr.y.row(i);
                for j in 0..k {
                    let bit = 1u128 << j;
                    let bad = if st.passive & bit != 0 {
                        xi[j] < 0.0
                    } else {
                        yi[j] < 0.0
                    };
                    if bad {
                        infeasible |= bit;
                    }
                }
                if infeasible == 0 {
                    st.done = true;
                    continue;
                }
                any_pending = true;
                let count = infeasible.count_ones();
                if count < st.best_infeasible {
                    st.best_infeasible = count;
                    st.budget = self.backup_budget;
                    st.passive ^= infeasible;
                } else if st.budget > 0 {
                    st.budget -= 1;
                    st.passive ^= infeasible;
                } else {
                    // Murty's backup rule: flip only the largest index.
                    let top = 127 - infeasible.leading_zeros();
                    st.passive ^= 1u128 << top;
                }
            }
            if !any_pending {
                return;
            }

            // Phase 2: solve the unconstrained systems on the passive
            // sets and refresh x, y.
            if self.group_columns {
                // Group rows by passive set, recycling the row-index
                // vectors and the map's buckets.
                scr.group_of.clear();
                scr.n_groups = 0;
                for (i, st) in scr.states.iter().enumerate() {
                    if st.done {
                        continue;
                    }
                    let gi = *scr.group_of.entry(st.passive).or_insert_with(|| {
                        let gi = scr.n_groups;
                        scr.n_groups += 1;
                        if scr.group_rows.len() < scr.n_groups {
                            scr.group_rows.push(Vec::new());
                            scr.group_masks.push(0);
                        }
                        scr.group_rows[gi].clear();
                        scr.group_masks[gi] = st.passive;
                        gi
                    });
                    scr.group_rows[gi].push(i);
                }
                for gi in 0..scr.n_groups {
                    solve_support(
                        gram,
                        ctb,
                        x,
                        &mut scr.y,
                        scr.group_masks[gi],
                        &scr.group_rows[gi],
                        &mut scr.support,
                    );
                }
            } else {
                // One factorization per row (ablation baseline).
                for i in 0..r {
                    if !scr.states[i].done {
                        let mask = scr.states[i].passive;
                        solve_support(gram, ctb, x, &mut scr.y, mask, &[i], &mut scr.support);
                    }
                }
            }
        }
        // Round cap hit: keep the best-effort solution but make it
        // feasible (nonnegative); callers treat BPP output as a
        // projection anyway.
        x.project_nonnegative();
    }
}

/// Solves rows `rows` (all sharing passive set `mask`) and updates
/// their `x` and `y` rows, using the caller's scratch buffers.
fn solve_support(
    gram: &Mat,
    ctb: &Mat,
    x: &mut Mat,
    y: &mut Mat,
    mask: u128,
    rows: &[usize],
    scr: &mut SupportScratch,
) {
    let k = gram.nrows();
    scr.free.clear();
    scr.free
        .extend((0..k).filter(|&j| mask & (1u128 << j) != 0));
    let free = &scr.free;
    let f = free.len();

    if f == 0 {
        // Entirely active: x = 0, y = −Cᵀb.
        for &i in rows {
            x.row_mut(i).fill(0.0);
            let yi = y.row_mut(i);
            for (j, v) in yi.iter_mut().enumerate() {
                *v = -ctb[(i, j)];
            }
        }
        return;
    }

    // G_FF and the stacked right-hand sides (one column per row).
    scr.gff.resize(f, f);
    for (a, &ja) in free.iter().enumerate() {
        for (b, &jb) in free.iter().enumerate() {
            scr.gff[(a, b)] = gram[(ja, jb)];
        }
    }
    scr.rhs.resize(f, rows.len());
    for (col, &i) in rows.iter().enumerate() {
        for (a, &ja) in free.iter().enumerate() {
            scr.rhs[(a, col)] = ctb[(i, ja)];
        }
    }
    // Factor and solve in place: `rhs` holds the solution afterwards.
    match cholesky_into(&scr.gff, &mut scr.factor) {
        Ok(()) => cholesky_solve_in_place(&scr.factor, &mut scr.rhs),
        Err(_) => {
            // Semidefinite fallback (rare): shifted solve, allocating.
            let sol = solve_spd(&scr.gff, &scr.rhs).unwrap_or_else(|_| Mat::zeros(f, rows.len()));
            scr.rhs.copy_from(&sol);
        }
    }
    let sol = &scr.rhs;

    for (col, &i) in rows.iter().enumerate() {
        // x_F = solution, x elsewhere = 0.
        let xi = x.row_mut(i);
        xi.fill(0.0);
        for (a, &ja) in free.iter().enumerate() {
            xi[ja] = sol[(a, col)];
        }
        // y = G·x − Cᵀb on the active set; exactly 0 on F.
        let yi = y.row_mut(i);
        for j in 0..k {
            if mask & (1u128 << j) != 0 {
                yi[j] = 0.0;
            } else {
                let mut v = -ctb[(i, j)];
                let grow = gram.row(j);
                for (a, &ja) in free.iter().enumerate() {
                    v += grow[ja] * sol[(a, col)];
                }
                yi[j] = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nls_objective;
    use crate::reference::exhaustive_nnls;
    use nmf_matrix::rng::Fill;
    use nmf_matrix::{gram, matmul_ta, solve_spd};

    /// Builds a well-conditioned random NLS instance: G = CᵀC + δI,
    /// CtB from random C and B.
    fn instance(k: usize, r: usize, seed: u64) -> (Mat, Mat) {
        let c = Mat::gaussian(3 * k + 5, k, seed);
        let b = Mat::gaussian(3 * k + 5, r, seed + 1);
        let mut g = gram(&c);
        for i in 0..k {
            g[(i, i)] += 1e-8;
        }
        let ctb = matmul_ta(&b, &c); // r×k
        (g, ctb)
    }

    #[test]
    fn matches_exhaustive_reference() {
        for seed in 0..20 {
            let k = 2 + (seed as usize % 5); // k in 2..=6
            let (g, ctb) = instance(k, 4, 100 + seed);
            let mut x = Mat::zeros(4, k);
            Bpp::default().solve(&g, &ctb, &mut x);
            for i in 0..4 {
                let expect = exhaustive_nnls(&g, ctb.row(i));
                for j in 0..k {
                    assert!(
                        (x[(i, j)] - expect[j]).abs() < 1e-6,
                        "seed {seed} row {i}: got {:?}, expected {:?}",
                        x.row(i),
                        expect
                    );
                }
            }
        }
    }

    #[test]
    fn satisfies_kkt_conditions() {
        let (g, ctb) = instance(10, 30, 7);
        let mut x = Mat::zeros(30, 10);
        Bpp::default().solve(&g, &ctb, &mut x);
        assert!(x.all_nonnegative(), "primal feasibility");
        // y = G·x − Cᵀb must be ≥ −tol, and complementary to x.
        let xg = nmf_matrix::matmul_tb(&x, &g);
        for i in 0..30 {
            for j in 0..10 {
                let yij = xg[(i, j)] - ctb[(i, j)];
                assert!(yij > -1e-7, "dual feasibility violated: y[{i},{j}] = {yij}");
                assert!(
                    (x[(i, j)] * yij).abs() < 1e-6,
                    "complementarity violated at ({i},{j}): x={} y={yij}",
                    x[(i, j)]
                );
            }
        }
    }

    #[test]
    fn grouping_matches_rowwise() {
        let (g, ctb) = instance(8, 50, 11);
        let mut x_grouped = Mat::zeros(50, 8);
        let mut x_rowwise = Mat::zeros(50, 8);
        Bpp {
            group_columns: true,
            ..Bpp::default()
        }
        .solve(&g, &ctb, &mut x_grouped);
        Bpp {
            group_columns: false,
            ..Bpp::default()
        }
        .solve(&g, &ctb, &mut x_rowwise);
        assert!(x_grouped.max_abs_diff(&x_rowwise) < 1e-9);
    }

    #[test]
    fn reused_solver_matches_fresh_solver() {
        // One solver instance reused across many calls (the driver
        // pattern) must produce the same results as a fresh solver per
        // call — scratch carries no state between calls.
        let mut reused = Bpp::default();
        for seed in 0..12 {
            let k = 3 + (seed as usize % 6);
            let r = 5 + (seed as usize % 17);
            let (g, ctb) = instance(k, r, 300 + seed);
            let mut x_reused = Mat::zeros(r, k);
            reused.solve(&g, &ctb, &mut x_reused);
            let mut x_fresh = Mat::zeros(r, k);
            Bpp::default().solve(&g, &ctb, &mut x_fresh);
            assert_eq!(
                x_reused, x_fresh,
                "seed {seed}: reused-scratch solve diverged from fresh solve"
            );
        }
    }

    #[test]
    fn unconstrained_optimum_is_returned_when_nonnegative() {
        // If Cᵀb has the same sign structure as a nonnegative solution,
        // BPP must return the plain least-squares solution.
        let k = 5;
        let c = Mat::gaussian(20, k, 42);
        let g = {
            let mut g = gram(&c);
            for i in 0..k {
                g[(i, i)] += 0.1;
            }
            g
        };
        let x_true = Mat::uniform(3, k, 43); // strictly positive rows
                                             // ctb = G·x_true ⇒ unconstrained optimum is x_true itself.
        let ctb = nmf_matrix::matmul_tb(&x_true, &g);
        let mut x = Mat::zeros(3, k);
        Bpp::default().solve(&g, &ctb, &mut x);
        assert!(x.max_abs_diff(&x_true) < 1e-7);
    }

    #[test]
    fn zero_rhs_gives_zero_solution() {
        let (g, _) = instance(6, 1, 3);
        let ctb = Mat::zeros(4, 6);
        let mut x = Mat::uniform(4, 6, 9);
        Bpp::default().solve(&g, &ctb, &mut x);
        assert_eq!(x, Mat::zeros(4, 6));
    }

    #[test]
    fn negative_rhs_gives_zero_solution() {
        // Cᵀb < 0 everywhere ⇒ y = −Cᵀb > 0 with x = 0 satisfies KKT.
        let (g, mut ctb) = instance(6, 5, 17);
        for v in ctb.as_mut_slice() {
            *v = -v.abs() - 0.1;
        }
        let mut x = Mat::zeros(5, 6);
        Bpp::default().solve(&g, &ctb, &mut x);
        assert_eq!(x, Mat::zeros(5, 6));
    }

    #[test]
    fn improves_on_projected_least_squares() {
        // BPP's optimum must be at least as good as clamping the
        // unconstrained solution.
        let (g, ctb) = instance(7, 10, 23);
        let mut x_bpp = Mat::zeros(10, 7);
        Bpp::default().solve(&g, &ctb, &mut x_bpp);
        let rhs_t = ctb.transpose();
        let mut clamped = solve_spd(&g, &rhs_t).unwrap().transpose();
        clamped.project_nonnegative();
        let f_bpp = nls_objective(&g, &ctb, &x_bpp);
        let f_clamped = nls_objective(&g, &ctb, &clamped);
        assert!(
            f_bpp <= f_clamped + 1e-9,
            "BPP {f_bpp} worse than clamped LS {f_clamped}"
        );
    }

    #[test]
    fn handles_k_equal_one() {
        let g = Mat::from_rows(&[&[2.0]]);
        let ctb = Mat::from_rows(&[&[4.0], &[-3.0]]);
        let mut x = Mat::zeros(2, 1);
        Bpp::default().solve(&g, &ctb, &mut x);
        assert!((x[(0, 0)] - 2.0).abs() < 1e-12); // 2x = 4
        assert_eq!(x[(1, 0)], 0.0); // negative rhs clamps to 0
    }
}
