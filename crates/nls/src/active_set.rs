//! Lawson–Hanson active-set NNLS.
//!
//! The classic single-variable active-set method the paper's §1 cites as
//! the standard alternative to BPP ("active set and active-set like
//! methods are very suitable" when `k ≪ min(m,n)`). It moves exactly one
//! variable into the passive set per outer iteration and backtracks to
//! the feasible boundary when the unconstrained solve goes negative, so
//! it converges more slowly than BPP's block exchanges — the difference
//! Kim & Park quantify and the reason the paper uses BPP. Included for
//! completeness of the solver menu and as a second exact reference.

use crate::NlsSolver;
use nmf_matrix::{solve_spd, Mat};

/// Lawson–Hanson active-set solver (exact solve per call, like BPP).
#[derive(Clone, Debug)]
pub struct ActiveSet {
    /// Dual-feasibility tolerance for the stopping test.
    pub tol: f64,
    /// Outer-iteration cap (≥ 2k suffices in exact arithmetic; the cap
    /// guards against stalling under ill-conditioning).
    pub max_outer: usize,
}

impl Default for ActiveSet {
    fn default() -> Self {
        ActiveSet {
            tol: 1e-12,
            max_outer: 400,
        }
    }
}

impl NlsSolver for ActiveSet {
    fn update(&mut self, gram: &Mat, ctb: &Mat, x: &mut Mat) {
        assert_eq!(x.shape(), ctb.shape());
        let k = gram.nrows();
        assert_eq!(gram.ncols(), k);
        for i in 0..x.nrows() {
            let b: Vec<f64> = ctb.row(i).to_vec();
            let sol = self.solve_one(gram, &b);
            x.row_mut(i).copy_from_slice(&sol);
        }
    }

    fn name(&self) -> &'static str {
        "ActiveSet"
    }
}

impl ActiveSet {
    /// Solves `min_{x≥0} xᵀGx − 2xᵀb` for one right-hand side.
    pub fn solve_one(&self, g: &Mat, b: &[f64]) -> Vec<f64> {
        let k = g.nrows();
        let mut passive = vec![false; k];
        let mut x = vec![0.0; k];

        for _outer in 0..self.max_outer {
            // Negative gradient w = b − G·x; optimal iff w ≤ tol outside
            // the passive set.
            let mut best_j = None;
            let mut best_w = self.tol;
            for j in 0..k {
                if passive[j] {
                    continue;
                }
                let gj = g.row(j);
                let wj = b[j] - dot_sparse(gj, &x);
                if wj > best_w {
                    best_w = wj;
                    best_j = Some(j);
                }
            }
            let Some(enter) = best_j else { break };
            passive[enter] = true;

            // Inner loop: solve on the passive set; backtrack while the
            // solution leaves the feasible region.
            loop {
                let free: Vec<usize> = (0..k).filter(|&j| passive[j]).collect();
                let z = solve_on_support(g, b, &free);
                if z.iter().all(|&v| v > 0.0) {
                    x.fill(0.0);
                    for (idx, &j) in free.iter().enumerate() {
                        x[j] = z[idx];
                    }
                    break;
                }
                // Step toward z until the first variable hits zero.
                let mut alpha = f64::INFINITY;
                for (idx, &j) in free.iter().enumerate() {
                    if z[idx] <= 0.0 {
                        let denom = x[j] - z[idx];
                        if denom > 0.0 {
                            alpha = alpha.min(x[j] / denom);
                        } else {
                            alpha = 0.0;
                        }
                    }
                }
                let alpha = alpha.clamp(0.0, 1.0);
                for (idx, &j) in free.iter().enumerate() {
                    x[j] += alpha * (z[idx] - x[j]);
                }
                // Deactivate everything that reached the boundary.
                let mut removed = false;
                for &j in &free {
                    if x[j] <= self.tol {
                        x[j] = 0.0;
                        if passive[j] {
                            passive[j] = false;
                            removed = true;
                        }
                    }
                }
                if !removed {
                    // Numerical stall: accept the backtracked point.
                    break;
                }
                if !passive.iter().any(|&p| p) {
                    break;
                }
            }
        }
        x
    }
}

fn dot_sparse(grow: &[f64], x: &[f64]) -> f64 {
    let mut s = 0.0;
    for (g, v) in grow.iter().zip(x) {
        if *v != 0.0 {
            s += g * v;
        }
    }
    s
}

/// Unconstrained solve of `G_FF z = b_F` on the support `free`.
fn solve_on_support(g: &Mat, b: &[f64], free: &[usize]) -> Vec<f64> {
    let f = free.len();
    if f == 0 {
        return Vec::new();
    }
    let mut gff = Mat::zeros(f, f);
    for (a, &ja) in free.iter().enumerate() {
        for (c, &jc) in free.iter().enumerate() {
            gff[(a, c)] = g[(ja, jc)];
        }
    }
    let mut rhs = Mat::zeros(f, 1);
    for (a, &ja) in free.iter().enumerate() {
        rhs[(a, 0)] = b[ja];
    }
    match solve_spd(&gff, &rhs) {
        Ok(sol) => (0..f).map(|a| sol[(a, 0)]).collect(),
        Err(_) => vec![0.0; f],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::exhaustive_nnls;
    use crate::{Bpp, NlsSolver};
    use nmf_matrix::rng::Fill;
    use nmf_matrix::{gram, matmul_ta};

    fn instance(k: usize, r: usize, seed: u64) -> (Mat, Mat) {
        let c = Mat::gaussian(3 * k + 5, k, seed);
        let b = Mat::gaussian(3 * k + 5, r, seed + 1);
        let mut g = gram(&c);
        for i in 0..k {
            g[(i, i)] += 1e-8;
        }
        (g, matmul_ta(&b, &c))
    }

    #[test]
    fn matches_exhaustive_reference() {
        for seed in 0..15 {
            let k = 2 + (seed as usize % 4);
            let (g, ctb) = instance(k, 3, 300 + seed);
            let mut x = Mat::zeros(3, k);
            ActiveSet::default().update(&g, &ctb, &mut x);
            for i in 0..3 {
                let expect = exhaustive_nnls(&g, ctb.row(i));
                for j in 0..k {
                    assert!(
                        (x[(i, j)] - expect[j]).abs() < 1e-6,
                        "seed {seed} row {i}: got {:?}, expected {:?}",
                        x.row(i),
                        expect
                    );
                }
            }
        }
    }

    #[test]
    fn agrees_with_bpp() {
        let (g, ctb) = instance(9, 20, 400);
        let mut x_as = Mat::zeros(20, 9);
        let mut x_bpp = Mat::zeros(20, 9);
        ActiveSet::default().update(&g, &ctb, &mut x_as);
        Bpp::default().update(&g, &ctb, &mut x_bpp);
        assert!(
            x_as.max_abs_diff(&x_bpp) < 1e-6,
            "active-set and BPP must find the same optimum"
        );
    }

    #[test]
    fn nonnegative_output() {
        let (g, ctb) = instance(7, 12, 500);
        let mut x = Mat::zeros(12, 7);
        ActiveSet::default().update(&g, &ctb, &mut x);
        assert!(x.all_nonnegative());
        assert!(x.all_finite());
    }

    #[test]
    fn zero_rhs_gives_zero() {
        let (g, _) = instance(5, 1, 600);
        let ctb = Mat::zeros(3, 5);
        let mut x = Mat::zeros(3, 5);
        ActiveSet::default().update(&g, &ctb, &mut x);
        assert_eq!(x, Mat::zeros(3, 5));
    }
}
