//! Workspace facade: re-exports the crates of the HPC-NMF reproduction so
//! the repo-level tests and examples have a single dependency root.
//!
//! Library users should depend on the individual crates directly
//! ([`hpc_nmf`] being the main entry point); this package exists to host
//! the cross-crate integration tests under `tests/` and the runnable
//! examples under `examples/`.

pub use hpc_nmf;
pub use nmf_data;
pub use nmf_matrix;
pub use nmf_nls;
pub use nmf_sparse;
pub use nmf_vmpi;
