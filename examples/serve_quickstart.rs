//! Serving quickstart: embed the multi-tenant `nmf_serve` server in a
//! process, drive two tenants over the in-process transport, watch the
//! fair scheduler share the machine, and shut down cleanly.
//!
//! ```sh
//! cargo run --release --example serve_quickstart
//! ```
//!
//! The same client code works against a remote server over a Unix
//! socket — swap the `ChannelConnector` for
//! `UnixTransport::connect("/tmp/nmf.sock")` and start the `nmf_serve`
//! binary. See `docs/serving.md` for the protocol and quota model.

use nmf_serve::prelude::*;

fn job(seed: u64, iters: usize) -> JobSpec {
    JobSpec {
        source: JobSource::Dataset {
            kind: "ssyn".into(),
            scale: 2000, // paper dims / 2000 ≈ 103x69
            seed,
        },
        k: 6,
        ranks: 2,
        algo: hpc_nmf::harness::Algo::Hpc2D,
        solver: nmf_nls::SolverKind::Bpp,
        max_iters: iters,
        seed,
        tol: None,
    }
}

fn main() -> Result<(), ServeError> {
    // 1. Start the server on its own thread. The default quota allows 4
    //    concurrent jobs and 16 engine steps per tenant per quantum.
    let (listener, connector) = channel_listener();
    let server = Server::new(ServerConfig::default());
    let core = std::thread::spawn(move || server.run(Box::new(listener)));

    // 2. Two tenants, each on its own connection. "research" floods the
    //    server with four jobs; "production" submits one. The per-tenant
    //    step budget keeps production's latency unaffected.
    let flood = std::thread::spawn({
        let connector = connector.clone();
        move || -> Result<TenantReport, ServeError> {
            let mut client = Client::new(Box::new(connector.connect()?));
            let jobs: Vec<u64> = (0..4)
                .map(|i| client.submit("research", &job(100 + i, 20)))
                .collect::<Result<_, _>>()?;
            for &j in &jobs {
                client.wait_finished("research", j, 60_000)?;
            }
            client.tenant_stats("research")
        }
    });

    let mut client = Client::new(Box::new(connector.connect()?));
    let j = client.submit("production", &job(7, 20))?;
    let status = client.wait_finished("production", j, 60_000)?;
    println!(
        "production job {j}: {} after {} iterations, objective {:.4e}",
        status.phase.as_str(),
        status.iterations,
        status.objective
    );

    // 3. Factors come back as matrices, valid the moment the job
    //    finishes (or even mid-run).
    let (w, h) = client.factors("production", j)?;
    println!(
        "factors: W {}x{}, H {}x{}",
        w.nrows(),
        w.ncols(),
        h.nrows(),
        h.ncols()
    );

    let research = flood.join().expect("research tenant")?;
    let production = client.tenant_stats("production")?;
    println!(
        "steps completed — research (4 jobs): {}, production (1 job): {}",
        research.steps_completed, production.steps_completed
    );

    // 4. One shutdown request stops the core loop; in-flight state is
    //    dropped (durable state belongs in checkpoints).
    client.shutdown()?;
    let stats = core.join().expect("server thread")?;
    println!(
        "server served {} requests over {} connections in {} quanta",
        stats.requests, stats.connections, stats.quanta
    );
    Ok(())
}
