//! Topic modeling on a bag-of-words matrix (the paper's text-mining
//! motivation, §1): rows are vocabulary terms, columns are documents,
//! `W`'s columns are topics, `H`'s columns are per-document topic
//! weights.
//!
//! We plant `k` ground-truth topics, generate sparse documents as
//! mixtures, factorize with HPC-NMF, and verify the planted topics are
//! recovered (matched by cosine similarity).
//!
//! ```sh
//! cargo run --release --example topic_modeling
//! ```

use hpc_nmf::prelude::*;
use nmf_sparse::Coo;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const VOCAB: usize = 2_000;
const DOCS: usize = 800;
const TOPICS: usize = 6;
const WORDS_PER_DOC: usize = 120;

/// Plants `TOPICS` topics, each concentrated on its own vocabulary band
/// with a heavy head, and samples documents as 1-2 topic mixtures.
fn generate(seed: u64) -> (Input, Vec<Vec<usize>>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    // Topic t's band of characteristic terms.
    let band = VOCAB / TOPICS;
    let top_terms: Vec<Vec<usize>> = (0..TOPICS)
        .map(|t| (t * band..t * band + 20).collect())
        .collect();

    let mut coo = Coo::with_capacity(VOCAB, DOCS, DOCS * WORDS_PER_DOC);
    let mut doc_topic = Vec::with_capacity(DOCS);
    for d in 0..DOCS {
        let main_topic = rng.gen_range(0..TOPICS);
        doc_topic.push(main_topic);
        let second = rng.gen_range(0..TOPICS);
        for _ in 0..WORDS_PER_DOC {
            let topic = if rng.gen::<f64>() < 0.8 {
                main_topic
            } else {
                second
            };
            // Zipf-ish within the topic band: prefer the head terms.
            let r: f64 = rng.gen::<f64>();
            let offset = ((band as f64) * r * r) as usize;
            let term = topic * band + offset.min(band - 1);
            coo.push(term, d, 1.0);
        }
    }
    (Input::Sparse(coo.to_csr()), top_terms, doc_topic)
}

fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    dot / (na * nb).max(f64::MIN_POSITIVE)
}

fn main() {
    let (input, top_terms, doc_topic) = generate(2024);
    let (m, n) = input.shape();
    println!(
        "bag-of-words: {m} terms x {n} documents, {} nonzeros (density {:.4})",
        input.nnz(),
        input.nnz() as f64 / (m * n) as f64
    );

    let p = 8;
    let out = factorize(
        &input,
        p,
        Algo::Hpc2D,
        &NmfConfig::new(TOPICS).with_max_iters(30),
    );
    println!(
        "factorized with k={TOPICS} on {p} ranks: rel error {:.3}",
        out.rel_error
    );

    // Match each planted topic to the recovered W column with highest
    // cosine similarity over the vocabulary.
    let mut used = [false; TOPICS];
    let mut total_sim = 0.0;
    let mut doc_correct = 0usize;
    let mut topic_of_component = [0usize; TOPICS];
    #[allow(clippy::needless_range_loop)] // t is both index and topic id
    for t in 0..TOPICS {
        // Indicator vector of the planted topic's band.
        let mut indicator = vec![0.0; m];
        let band = VOCAB / TOPICS;
        indicator[t * band..(t + 1) * band].fill(1.0);
        let (best_c, best_sim) = (0..TOPICS)
            .filter(|&c| !used[c])
            .map(|c| (c, cosine(&out.w.col(c), &indicator)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        used[best_c] = true;
        topic_of_component[best_c] = t;
        total_sim += best_sim;
        let head: Vec<usize> = {
            let col = out.w.col(best_c);
            let mut idx: Vec<usize> = (0..m).collect();
            idx.sort_unstable_by(|&a, &b| col[b].total_cmp(&col[a]));
            idx.into_iter().take(5).collect()
        };
        println!(
            "planted topic {t} -> component {best_c} (cosine {best_sim:.3}); top terms {head:?} \
             (expected within {:?}..)",
            &top_terms[t][..3]
        );
    }
    println!(
        "mean topic cosine similarity: {:.3}",
        total_sim / TOPICS as f64
    );

    // Document classification: argmax of H column vs planted main topic.
    #[allow(clippy::needless_range_loop)] // d indexes both H and doc_topic
    for d in 0..n {
        let mut best = 0;
        for c in 1..TOPICS {
            if out.h[(c, d)] > out.h[(best, d)] {
                best = c;
            }
        }
        if topic_of_component[best] == doc_topic[d] {
            doc_correct += 1;
        }
    }
    let acc = doc_correct as f64 / n as f64;
    println!(
        "document topic accuracy: {:.1}% ({doc_correct}/{n})",
        100.0 * acc
    );
    assert!(acc > 0.8, "planted topics should be recoverable");
    println!("OK: topics recovered");
}
