//! Quickstart: factorize a random nonnegative matrix on a virtual
//! processor grid and inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hpc_nmf::prelude::*;
use hpc_nmf::total_comm;
use nmf_matrix::rng::Fill;
use nmf_matrix::Mat;
use nmf_vmpi::Op;

fn main() {
    // A 600×400 dense nonnegative matrix with planted rank-8 structure.
    let (m, n, k) = (600, 400, 8);
    let planted_w = Mat::uniform(m, k, 11);
    let planted_h = Mat::uniform(k, n, 12);
    let a = Input::Dense(nmf_matrix::matmul(&planted_w, &planted_h));
    println!("input: {}x{} dense, rank-{k} structure planted", m, n);

    // Factorize on 8 virtual MPI ranks with the communication-optimal 2D
    // grid and the BPP solver (the paper's configuration).
    let p = 8;
    let grid = Algo::Hpc2D.grid(m, n, p);
    println!(
        "running HPC-NMF on p={p} ranks, grid {}x{}, solver BPP",
        grid.pr, grid.pc
    );

    let config = NmfConfig::new(k).with_max_iters(30).with_tol(1e-9);
    let out = factorize(&a, p, Algo::Hpc2D, &config);

    println!("\nconverged after {} iterations", out.iterations);
    println!("relative error ‖A−WH‖/‖A‖ = {:.3e}", out.rel_error);
    println!(
        "W: {}x{} nonnegative: {}",
        out.w.nrows(),
        out.w.ncols(),
        out.w.all_nonnegative()
    );
    println!(
        "H: {}x{} nonnegative: {}",
        out.h.nrows(),
        out.h.ncols(),
        out.h.all_nonnegative()
    );

    println!("\nobjective history (first 10):");
    for (i, f) in out.history().iter().take(10).enumerate() {
        println!("  iter {i:>2}: {f:.6e}");
    }

    let comm = total_comm(&out);
    println!("\ncommunication totals across all ranks:");
    for op in [Op::AllGather, Op::ReduceScatter, Op::AllReduce] {
        let s = comm.op(op);
        println!(
            "  {:<15} {:>9} words {:>6} messages  {:>9.3?}",
            op.name(),
            s.words,
            s.messages,
            s.time
        );
    }

    // Contrast with the naive algorithm's communication volume.
    let naive = factorize(&a, p, Algo::Naive, &config);
    println!(
        "\nNaive (Algorithm 2) moved {} words; HPC-NMF moved {} words ({:.1}x less)",
        total_comm(&naive).total_words(),
        comm.total_words(),
        total_comm(&naive).total_words() as f64 / comm.total_words().max(1) as f64
    );
}
