//! Quickstart: build a factorization session, inspect it mid-run, drive
//! it to convergence, and round-trip it through a durable checkpoint.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hpc_nmf::prelude::*;
use hpc_nmf::total_comm;
use nmf_matrix::rng::Fill;
use nmf_matrix::Mat;
use nmf_vmpi::Op;

fn main() {
    // A 600×400 dense nonnegative matrix with planted rank-8 structure.
    let (m, n, k) = (600, 400, 8);
    let planted_w = Mat::uniform(m, k, 11);
    let planted_h = Mat::uniform(k, n, 12);
    let a = Input::Dense(nmf_matrix::matmul(&planted_w, &planted_h));
    println!("input: {}x{} dense, rank-{k} structure planted", m, n);

    // Build a session: 8 virtual MPI ranks, communication-optimal 2D
    // grid, BPP solver (the paper's configuration). The builder
    // validates everything up front — errors are values, not panics.
    let mut model = Nmf::on(&a)
        .rank(k)
        .ranks(8)
        .algo(Algo::Hpc2D)
        .solver(SolverKind::Bpp)
        .max_iters(30)
        .tol(1e-9)
        .build()
        .expect("a valid factorization request");
    let grid = model.grid();
    println!(
        "running {} on p={} ranks, grid {}x{}, solver BPP",
        model.algo().name(),
        model.ranks(),
        grid.pr,
        grid.pc
    );

    // The model is a live handle: step a few iterations and peek at the
    // factors mid-run (what a serving layer would export).
    for _ in 0..3 {
        model.step();
    }
    let (w_mid, _) = model.factors();
    println!(
        "after 3 iterations: objective {:.3e}, mid-run W is {}x{} (nonnegative: {})",
        model.objective(),
        w_mid.nrows(),
        w_mid.ncols(),
        w_mid.all_nonnegative()
    );

    // Persist the in-flight run, then resume it in a fresh session —
    // the continuation is bit-identical to never having stopped.
    let ckpt = std::env::temp_dir().join("hpc_nmf_quickstart.ckpt");
    model.save(&ckpt).expect("checkpoint writes");
    drop(model);
    let mut model = Model::load(&ckpt, &a).expect("checkpoint loads");
    println!(
        "resumed from {} at iteration {}",
        ckpt.display(),
        model.iterations()
    );
    let reason = model.run();
    println!(
        "\nstopped after {} total iterations ({})",
        model.iterations(),
        reason.as_str()
    );
    let _ = std::fs::remove_file(&ckpt);

    println!("relative error ‖A−WH‖/‖A‖ = {:.3e}", model.rel_error());
    let (w, h) = model.factors();
    println!(
        "W: {}x{} nonnegative: {}",
        w.nrows(),
        w.ncols(),
        w.all_nonnegative()
    );
    println!(
        "H: {}x{} nonnegative: {}",
        h.nrows(),
        h.ncols(),
        h.all_nonnegative()
    );

    println!("\nobjective history (first 10 post-resume):");
    for (i, rec) in model.records().iter().take(10).enumerate() {
        println!("  iter {i:>2}: {:.6e}", rec.objective);
    }

    let out = model.into_output();
    let comm = total_comm(&out);
    println!("\ncommunication totals across all ranks:");
    for op in [Op::AllGather, Op::ReduceScatter, Op::AllReduce] {
        let s = comm.op(op);
        println!(
            "  {:<15} {:>9} words {:>6} messages  {:>9.3?}",
            op.name(),
            s.words,
            s.messages,
            s.time
        );
    }

    // Contrast with the naive algorithm's communication volume, per
    // iteration (the resumed session's counters cover only its own
    // iterations, so raw totals would not be comparable).
    let hpc_iters = out.iterations.max(1) as f64;
    let naive = factorize(
        &a,
        8,
        Algo::Naive,
        &NmfConfig::new(k).with_max_iters(30).with_tol(1e-9),
    );
    let naive_per_iter = total_comm(&naive).total_words() as f64 / naive.iterations.max(1) as f64;
    let hpc_per_iter = comm.total_words() as f64 / hpc_iters;
    println!(
        "\nNaive (Algorithm 2) moved {naive_per_iter:.0} words/iteration; \
         HPC-NMF moved {hpc_per_iter:.0} ({:.1}x less)",
        naive_per_iter / hpc_per_iter.max(1.0)
    );
}
