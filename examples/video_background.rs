//! Background subtraction in video via NMF (the paper's Video use case,
//! §6.1.1): the low-rank product `W·H` captures the static background,
//! and the residual `A − WH` isolates the moving object.
//!
//! The video is synthetic — a static rank-3 scene plus a small bright
//! block sweeping across the frame — standing in for the paper's Georgia
//! Tech intersection recording (which we obviously cannot ship).
//!
//! ```sh
//! cargo run --release --example video_background
//! ```

use hpc_nmf::prelude::*;
use nmf_data::DatasetKind;
use nmf_matrix::rng::Fill;
use nmf_matrix::{matmul, Mat};

fn main() {
    // ~10,134 pixels × 24 frames (paper dims divided by 100; still tall
    // and skinny, the regime the paper's 1D grid targets).
    let data = DatasetKind::Video.build(100, 77);
    let (m, n) = data.input.shape();
    println!("synthetic video: {m} pixels x {n} frames");

    let p = 8;
    let grid = Algo::Hpc2D.grid(m, n, p);
    println!(
        "optimal grid for this aspect ratio: {}x{} ({})",
        grid.pr,
        grid.pc,
        if grid.pc == 1 {
            "1D, as the paper prescribes for tall-skinny"
        } else {
            "2D"
        }
    );

    // Background model of rank 3 (the planted background rank).
    let out = factorize(
        &data.input,
        p,
        Algo::Hpc2D,
        &NmfConfig::new(3).with_max_iters(25),
    );
    println!("background model fit: relative error {:.3}", out.rel_error);

    // Foreground = residual. The moving object is the brightest residual
    // run in each frame; check that its detected position sweeps
    // monotonically like the planted object does.
    let Input::Dense(a) = &data.input else {
        unreachable!("video is dense")
    };
    let background = matmul(&out.w, &out.h);
    let mut positions = Vec::with_capacity(n);
    for t in 0..n {
        let mut best_pixel = 0;
        let mut best_val = f64::NEG_INFINITY;
        for i in 0..m {
            let resid = a[(i, t)] - background[(i, t)];
            if resid > best_val {
                best_val = resid;
                best_pixel = i;
            }
        }
        positions.push(best_pixel);
    }

    let monotone_steps = positions
        .windows(2)
        .filter(|w| w[1] >= w[0].saturating_sub(m / 50))
        .count();
    println!(
        "detected object position sweeps forward in {}/{} frame transitions",
        monotone_steps,
        n - 1
    );
    println!(
        "object travels pixel {} -> {} over {} frames",
        positions.first().unwrap(),
        positions.last().unwrap(),
        n
    );

    // Summarize foreground energy vs background energy.
    let resid_energy: f64 = (0..m)
        .flat_map(|i| (0..n).map(move |t| (i, t)))
        .map(|(i, t)| {
            let r = a[(i, t)] - background[(i, t)];
            r * r
        })
        .sum();
    println!(
        "foreground (residual) energy fraction: {:.4}",
        resid_energy / a.fro_norm_sq()
    );
    assert!(
        monotone_steps as f64 >= 0.9 * (n - 1) as f64,
        "moving object should be recovered by the residual"
    );
    println!("OK: background/foreground separation recovered the moving object");

    // --- Streaming refit via the session API ---
    // New frames arrive and the scene drifts slightly (lighting change);
    // instead of re-solving from scratch, open a session warm-started
    // from the previous factors and run it under a windowed + wall-clock
    // convergence policy, watching progress through the observer.
    let mut drifted = a.clone();
    let noise = Mat::uniform(m, n, 1234);
    for (v, nz) in drifted.as_mut_slice().iter_mut().zip(noise.as_slice()) {
        *v += 0.01 * nz;
    }
    let window2 = Input::Dense(drifted);
    let mut ht_prev = out.h.transpose();
    ht_prev.project_nonnegative();
    let mut refit = Nmf::on(&window2)
        .rank(3)
        .max_iters(25)
        .convergence(ConvergencePolicy::WindowedBudget {
            window: 3,
            tol: 1e-5,
            budget: Some(std::time::Duration::from_secs(2)),
        })
        .warm_start(out.w.clone(), ht_prev)
        .build()
        .expect("a valid warm-started session");
    let reason = refit.run_observed(|it, rec| {
        println!("  refit iteration {it}: objective {:.4e}", rec.objective);
    });
    println!(
        "streaming refit stopped after {} iterations ({})",
        refit.iterations(),
        reason.as_str()
    );
    assert!(
        refit.iterations() < 25,
        "warm start should converge before the iteration cap"
    );
}
