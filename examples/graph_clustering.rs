//! Community detection in a directed graph via NMF (the paper's Webbase
//! use case: "The NMF output of this directed graph will help us
//! understand clusters in graphs", §6.1.1).
//!
//! We sample a stochastic block model — dense within planted
//! communities, sparse across — factorize the adjacency matrix, and
//! assign each node to the community `argmaxₖ W[node, k]`.
//!
//! ```sh
//! cargo run --release --example graph_clustering
//! ```

use hpc_nmf::prelude::*;
use nmf_sparse::Coo;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NODES: usize = 900;
const COMMUNITIES: usize = 5;
const P_IN: f64 = 0.08;
const P_OUT: f64 = 0.004;

fn stochastic_block_model(seed: u64) -> (Input, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let labels: Vec<usize> = (0..NODES).map(|v| v % COMMUNITIES).collect();
    let mut coo = Coo::new(NODES, NODES);
    for u in 0..NODES {
        for v in 0..NODES {
            if u == v {
                continue;
            }
            let p = if labels[u] == labels[v] { P_IN } else { P_OUT };
            if rng.gen::<f64>() < p {
                coo.push(u, v, 1.0);
            }
        }
    }
    (Input::Sparse(coo.to_csr()), labels)
}

fn main() {
    let (input, labels) = stochastic_block_model(7);
    let (m, _) = input.shape();
    println!(
        "stochastic block model: {NODES} nodes, {COMMUNITIES} communities, {} edges",
        input.nnz()
    );

    let p = 9;
    let out = factorize(
        &input,
        p,
        Algo::Hpc2D,
        &NmfConfig::new(COMMUNITIES)
            .with_max_iters(40)
            .with_tol(1e-7),
    );
    println!(
        "factorized on {p} ranks ({} iterations, rel error {:.3})",
        out.iterations, out.rel_error
    );

    // Cluster nodes by the dominant W component.
    let assignment: Vec<usize> = (0..m)
        .map(|v| {
            let row = out.w.row(v);
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(c, _)| c)
                .unwrap()
        })
        .collect();

    // Map components to planted communities by majority vote, then score.
    let mut votes = vec![vec![0usize; COMMUNITIES]; COMMUNITIES];
    for (v, &c) in assignment.iter().enumerate() {
        votes[c][labels[v]] += 1;
    }
    let component_to_community: Vec<usize> = votes
        .iter()
        .map(|row| row.iter().enumerate().max_by_key(|&(_, n)| n).unwrap().0)
        .collect();
    let correct = assignment
        .iter()
        .enumerate()
        .filter(|&(v, &c)| component_to_community[c] == labels[v])
        .count();
    let acc = correct as f64 / m as f64;

    println!("component -> community map: {component_to_community:?}");
    println!("clustering accuracy: {:.1}% ({correct}/{m})", 100.0 * acc);

    // Pairwise diagnostic: how cleanly do the communities separate?
    #[allow(clippy::needless_range_loop)] // c is both index and label
    for c in 0..COMMUNITIES {
        let size = assignment.iter().filter(|&&a| a == c).count();
        println!(
            "  component {c}: {size} nodes, majority community {}",
            component_to_community[c]
        );
    }
    assert!(acc > 0.8, "planted communities should be recoverable");
    println!("OK: communities recovered");
}
