//! The core correctness property of the reproduction: every parallel
//! driver, on any processor count and grid, performs the *same
//! computation* as the sequential ANLS reference (paper §6.1.3), so the
//! factors must agree to floating-point-reassociation tolerance.

use hpc_nmf::prelude::*;
use hpc_nmf::seq::nmf_seq;
use nmf_matrix::rng::Fill;
use nmf_matrix::{matmul, Mat};
use nmf_sparse::gen::{banded, erdos_renyi};

const TOL: f64 = 1e-8;

fn dense_input(m: usize, n: usize, k: usize, seed: u64) -> Input {
    let w = Mat::uniform(m, k, seed);
    let h = Mat::uniform(k, n, seed + 1);
    let mut a = matmul(&w, &h);
    // Mild noise so the optimum is not exactly rank-k (more realistic
    // pivoting paths in BPP).
    let noise = Mat::uniform(m, n, seed + 2);
    for (av, nv) in a.as_mut_slice().iter_mut().zip(noise.as_slice()) {
        *av += 0.01 * nv;
    }
    Input::Dense(a)
}

fn assert_matches_sequential(input: &Input, p: usize, algo: Algo, config: &NmfConfig) {
    let seq = nmf_seq(input, config);
    let par = factorize(input, p, algo, config);
    let dw = par.w.max_abs_diff(&seq.w);
    let dh = par.h.max_abs_diff(&seq.h);
    assert!(
        dw < TOL && dh < TOL,
        "{} p={p}: factors diverge from sequential (dW={dw:.2e}, dH={dh:.2e})",
        algo.name()
    );
    let rel = (par.objective - seq.objective).abs() / seq.objective.abs().max(1.0);
    assert!(
        rel < 1e-9,
        "{} p={p}: objective {} vs {}",
        algo.name(),
        par.objective,
        seq.objective
    );
}

#[test]
fn naive_matches_sequential_dense() {
    let input = dense_input(36, 28, 4, 1);
    let config = NmfConfig::new(4).with_max_iters(8);
    for p in [1, 2, 3, 4, 6] {
        assert_matches_sequential(&input, p, Algo::Naive, &config);
    }
}

#[test]
fn hpc_1d_matches_sequential_dense() {
    let input = dense_input(36, 28, 4, 2);
    let config = NmfConfig::new(4).with_max_iters(8);
    for p in [1, 2, 4, 5] {
        assert_matches_sequential(&input, p, Algo::Hpc1D, &config);
    }
}

#[test]
fn hpc_2d_matches_sequential_dense() {
    let input = dense_input(40, 32, 4, 3);
    let config = NmfConfig::new(4).with_max_iters(8);
    for p in [4, 6, 9, 12] {
        assert_matches_sequential(&input, p, Algo::Hpc2D, &config);
    }
}

#[test]
fn hpc_explicit_grids_match_sequential() {
    let input = dense_input(30, 24, 3, 4);
    let config = NmfConfig::new(3).with_max_iters(6);
    for (pr, pc) in [(2, 3), (3, 2), (1, 4), (4, 1), (2, 2)] {
        let grid = Grid::new(pr, pc);
        assert_matches_sequential(&input, pr * pc, Algo::HpcGrid(grid), &config);
    }
}

#[test]
fn all_solvers_match_sequential_in_parallel() {
    let input = dense_input(32, 24, 3, 5);
    for solver in SolverKind::ALL {
        let config = NmfConfig::new(3).with_max_iters(6).with_solver(solver);
        assert_matches_sequential(&input, 6, Algo::Hpc2D, &config);
        assert_matches_sequential(&input, 4, Algo::Naive, &config);
    }
}

#[test]
fn sparse_inputs_match_sequential() {
    let er = Input::Sparse(erdos_renyi(48, 40, 0.15, 9));
    let config = NmfConfig::new(5).with_max_iters(6);
    assert_matches_sequential(&er, 6, Algo::Hpc2D, &config);
    assert_matches_sequential(&er, 4, Algo::Naive, &config);
    assert_matches_sequential(&er, 3, Algo::Hpc1D, &config);

    let bd = Input::Sparse(banded(45, 4));
    assert_matches_sequential(&bd, 9, Algo::Hpc2D, &config);
}

#[test]
fn uneven_dimensions_are_handled() {
    // Dimensions deliberately not divisible by the grid.
    let input = dense_input(37, 29, 3, 10);
    let config = NmfConfig::new(3).with_max_iters(5);
    for p in [2, 3, 4, 6, 8] {
        assert_matches_sequential(&input, p, Algo::Hpc2D, &config);
        assert_matches_sequential(&input, p, Algo::Naive, &config);
    }
}

#[test]
fn tall_skinny_prefers_and_supports_1d() {
    // Video-like aspect ratio: m >> n.
    let input = dense_input(200, 12, 3, 11);
    let config = NmfConfig::new(3).with_max_iters(5);
    let g = Algo::Hpc2D.grid(200, 12, 8);
    assert_eq!(g.pc, 1, "optimal grid for tall-skinny should be 1D");
    assert_matches_sequential(&input, 8, Algo::Hpc2D, &config);
}

#[test]
fn iterates_are_monotone_in_parallel() {
    let input = dense_input(40, 30, 4, 12);
    for solver in SolverKind::ALL {
        let out = factorize(
            &input,
            6,
            Algo::Hpc2D,
            &NmfConfig::new(4).with_max_iters(10).with_solver(solver),
        );
        let hist = out.history();
        for wpair in hist.windows(2) {
            assert!(
                wpair[1] <= wpair[0] * (1.0 + 1e-9) + 1e-9,
                "{solver:?} objective increased in parallel: {wpair:?}"
            );
        }
    }
}

#[test]
fn factors_are_nonnegative_and_shaped() {
    let input = dense_input(33, 27, 5, 13);
    let out = factorize(&input, 6, Algo::Hpc2D, &NmfConfig::new(5).with_max_iters(4));
    assert_eq!(out.w.shape(), (33, 5));
    assert_eq!(out.h.shape(), (5, 27));
    assert!(out.w.all_nonnegative());
    assert!(out.h.all_nonnegative());
    assert!(out.rel_error >= 0.0 && out.rel_error < 1.0);
}

#[test]
fn tolerance_early_exit_is_consistent_across_ranks() {
    let input = dense_input(30, 24, 3, 14);
    let config = NmfConfig::new(3).with_max_iters(100).with_tol(1e-7);
    let seq = nmf_seq(&input, &config);
    let par = factorize(&input, 4, Algo::Hpc2D, &config);
    assert_eq!(
        seq.iterations, par.iterations,
        "early exit must happen at the same iteration"
    );
}
