//! Tests for the L2 (Frobenius) regularization extension.

use hpc_nmf::prelude::*;
use hpc_nmf::seq::nmf_seq;
use nmf_matrix::rng::Fill;
use nmf_matrix::Mat;

fn input(seed: u64) -> Input {
    Input::Dense(Mat::uniform(40, 30, seed))
}

#[test]
fn ridge_shrinks_factor_norms() {
    let a = input(1);
    let base = nmf_seq(&a, &NmfConfig::new(4).with_max_iters(15));
    let reg = nmf_seq(&a, &NmfConfig::new(4).with_max_iters(15).with_l2(5.0, 5.0));
    // The unregularized problem is scale-indifferent between the factors
    // (any c·W, H/c keeps the fit), so a single factor's norm need not
    // shrink — ANLS happens to park most of the scale in W. What ridge
    // actually penalizes, and therefore must shrink, is the combined
    // λ_W‖W‖² + λ_H‖H‖² (here with equal λ: the norm sum).
    let base_penalty = base.w.fro_norm_sq() + base.h.fro_norm_sq();
    let reg_penalty = reg.w.fro_norm_sq() + reg.h.fro_norm_sq();
    assert!(
        reg_penalty < base_penalty,
        "ridge must shrink ‖W‖²+‖H‖²: {reg_penalty} vs {base_penalty}"
    );
    // The unregularized fit degrades (we traded fit for norm).
    assert!(reg.objective >= base.objective);
}

#[test]
fn zero_ridge_is_identity() {
    let a = input(2);
    let base = nmf_seq(&a, &NmfConfig::new(3).with_max_iters(5));
    let reg = nmf_seq(&a, &NmfConfig::new(3).with_max_iters(5).with_l2(0.0, 0.0));
    assert_eq!(base.w, reg.w);
    assert_eq!(base.h, reg.h);
}

#[test]
fn regularized_parallel_matches_sequential() {
    let a = input(3);
    let config = NmfConfig::new(3).with_max_iters(5).with_l2(0.5, 0.25);
    let seq = nmf_seq(&a, &config);
    for (p, algo) in [
        (4usize, Algo::Hpc2D),
        (6, Algo::Hpc2D),
        (4, Algo::Naive),
        (3, Algo::Hpc1D),
    ] {
        let par = factorize(&a, p, algo, &config);
        assert!(
            par.w.max_abs_diff(&seq.w) < 1e-8,
            "{} p={p}: regularized W diverges",
            algo.name()
        );
        assert!(par.h.max_abs_diff(&seq.h) < 1e-8);
    }
}

#[test]
fn regularization_works_with_every_solver() {
    let a = input(4);
    for solver in SolverKind::ALL {
        let out = nmf_seq(
            &a,
            &NmfConfig::new(3)
                .with_max_iters(8)
                .with_solver(solver)
                .with_l2(1.0, 1.0),
        );
        assert!(out.w.all_nonnegative() && out.w.all_finite(), "{solver:?}");
        assert!(out.h.all_nonnegative() && out.h.all_finite());
    }
}

#[test]
#[should_panic(expected = "regularization must be nonnegative")]
fn negative_ridge_is_rejected() {
    let _ = NmfConfig::new(3).with_l2(-1.0, 0.0);
}
