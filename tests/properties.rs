//! Property-based integration tests: distribution/grid invariants and
//! the parallel-equals-sequential property over randomized shapes,
//! ranks, grids, and solvers.

use hpc_nmf::dist::Dist1D;
use hpc_nmf::prelude::*;
use hpc_nmf::seq::nmf_seq;
use nmf_matrix::rng::Fill;
use nmf_matrix::Mat;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn dist1d_tiles_and_balances(total in 0usize..500, parts in 1usize..20) {
        let d = Dist1D::new(total, parts);
        let mut covered = 0usize;
        let mut min_len = usize::MAX;
        let mut max_len = 0usize;
        for i in 0..parts {
            let p = d.part(i);
            prop_assert_eq!(p.offset, covered);
            covered += p.len;
            min_len = min_len.min(p.len);
            max_len = max_len.max(p.len);
        }
        prop_assert_eq!(covered, total);
        prop_assert!(max_len - min_len <= 1);
        for g in 0..total {
            let o = d.owner(g);
            let p = d.part(o);
            prop_assert!(g >= p.offset && g < p.end());
        }
    }

    #[test]
    fn grid_optimal_minimizes_bandwidth_proxy(
        m in 10usize..100_000,
        n in 10usize..100_000,
        p in 1usize..64,
    ) {
        let g = Grid::optimal(m, n, p);
        prop_assert_eq!(g.pr * g.pc, p);
        let cost = |pr: usize, pc: usize| (pr - 1) as f64 * n as f64 + (pc - 1) as f64 * m as f64;
        for pr in 1..=p {
            if p % pr == 0 {
                prop_assert!(
                    cost(g.pr, g.pc) <= cost(pr, p / pr),
                    "grid {:?} beaten by {}x{}", g, pr, p / pr
                );
            }
        }
    }

    #[test]
    fn hpc_matches_sequential_on_random_shapes(
        m in 8usize..48,
        n in 8usize..48,
        pick in 0usize..5,
        seed in 0u64..1000,
    ) {
        let p = [2usize, 3, 4, 6, 8][pick];
        let k = 3usize.min(m.min(n));
        let input = Input::Dense(Mat::uniform(m, n, seed));
        let config = NmfConfig::new(k).with_max_iters(3).with_seed(seed);
        let seq = nmf_seq(&input, &config);
        let par = factorize(&input, p, Algo::Hpc2D, &config);
        prop_assert!(
            par.w.max_abs_diff(&seq.w) < 1e-8 && par.h.max_abs_diff(&seq.h) < 1e-8,
            "p={p} {}x{} seed={seed} diverged", m, n
        );
    }

    #[test]
    fn factors_always_nonnegative_and_finite(
        m in 8usize..40,
        n in 8usize..40,
        solver_pick in 0usize..3,
        seed in 0u64..500,
    ) {
        let solver = SolverKind::ALL[solver_pick];
        let input = Input::Dense(Mat::uniform(m, n, seed));
        let k = 2;
        let out = factorize(
            &input, 4, Algo::Hpc2D,
            &NmfConfig::new(k).with_max_iters(3).with_solver(solver).with_seed(seed),
        );
        prop_assert!(out.w.all_nonnegative() && out.w.all_finite());
        prop_assert!(out.h.all_nonnegative() && out.h.all_finite());
        prop_assert!(out.objective.is_finite());
    }
}
