//! Table 2 reproduction: the *counted* per-iteration communication of
//! each algorithm must match the paper's analytic formulas.
//!
//! | Algorithm | Words per iteration (per rank) | Messages |
//! |---|---|---|
//! | Naive | `O((m+n)k)` | `O(log p)` |
//! | HPC-NMF (m/p > n) | `O(nk)` | `O(log p)` |
//! | HPC-NMF (m/p < n) | `O(√(mnk²/p))` | `O(log p)` |
//!
//! The virtual MPI counts every word each rank actually sends, so for
//! power-of-two grids the comparison is *exact*, not asymptotic:
//!
//! * all-gather of total `n` words over `q` ranks sends `((q−1)/q)·n`;
//! * reduce-scatter likewise;
//! * all-reduce sends `2·((q−1)/q)·n` (Rabenseifner).

use hpc_nmf::prelude::*;
use hpc_nmf::total_comm;
use nmf_matrix::rng::Fill;
use nmf_matrix::Mat;
use nmf_vmpi::Op;

fn run(m: usize, n: usize, k: usize, p: usize, algo: Algo, iters: usize) -> NmfOutput {
    let input = Input::Dense(Mat::uniform(m, n, 42));
    factorize(&input, p, algo, &NmfConfig::new(k).with_max_iters(iters))
}

/// Exact per-rank words for an all-gather of `total` words over `q` ranks
/// with equal blocks.
fn ag_words(q: usize, total: usize) -> u64 {
    ((q - 1) * (total / q)) as u64
}

#[test]
fn hpc_2d_all_gather_words_match_formula() {
    // 2 iterations on a 4x4 grid with dims divisible by everything.
    let (m, n, k, p, iters) = (64, 32, 4, 16, 2);
    let grid = Grid::new(4, 4);
    let out = run(m, n, k, p, Algo::HpcGrid(grid), iters);
    // Per iteration, each rank all-gathers its n/p×k H-slice over the
    // grid column (pr ranks, total (n/pc)·k words) and its m/p×k W-slice
    // over the grid row (pc ranks, total (m/pr)·k words).
    let per_iter = ag_words(grid.pr, n / grid.pc * k) + ag_words(grid.pc, m / grid.pr * k);
    for s in &out.rank_comm {
        assert_eq!(s.op(Op::AllGather).words, per_iter * iters as u64);
    }
}

#[test]
fn hpc_2d_reduce_scatter_words_match_formula() {
    let (m, n, k, p, iters) = (64, 32, 4, 16, 2);
    let grid = Grid::new(4, 4);
    let out = run(m, n, k, p, Algo::HpcGrid(grid), iters);
    // Reduce-scatter of V (m/pr × k) over the grid row and of Y
    // (n/pc × k) over the grid column.
    let per_iter = ag_words(grid.pc, m / grid.pr * k) + ag_words(grid.pr, n / grid.pc * k);
    for s in &out.rank_comm {
        assert_eq!(s.op(Op::ReduceScatter).words, per_iter * iters as u64);
    }
}

#[test]
fn hpc_all_reduce_words_match_formula() {
    let (m, n, k, p, iters) = (64, 32, 4, 16, 3);
    let out = run(m, n, k, p, Algo::HpcGrid(Grid::new(4, 4)), iters);
    // Per iteration: two k×k Gram all-reduces + one 2-word objective
    // all-reduce + the one-time ‖A‖² scalar all-reduce.
    // Rabenseifner sends 2·((p−1)/p)·words per rank, exact when p | words.
    let kk = (k * k) as f64;
    let frac = (p - 1) as f64 / p as f64;
    let expected_gram = 2.0 * frac * kk * 2.0 * iters as f64;
    for s in &out.rank_comm {
        let words = s.op(Op::AllReduce).words as f64;
        // Gram all-reduces dominate; the scalar ones add < 4 words/iter
        // plus fold overhead for the tiny payloads.
        assert!(
            words >= expected_gram && words <= expected_gram + 16.0 * (iters as f64 + 1.0),
            "all-reduce words {words} vs expected ~{expected_gram}"
        );
    }
}

#[test]
fn naive_all_gather_words_match_formula() {
    let (m, n, k, p, iters) = (64, 32, 4, 8, 2);
    let out = run(m, n, k, p, Algo::Naive, iters);
    // Per iteration each rank all-gathers all of H (n·k words) and all
    // of W (m·k words).
    let per_iter = ag_words(p, n * k) + ag_words(p, m * k);
    for s in &out.rank_comm {
        assert_eq!(s.op(Op::AllGather).words, per_iter * iters as u64);
        assert_eq!(
            s.op(Op::ReduceScatter).words,
            0,
            "Naive performs no reduce-scatter"
        );
    }
}

#[test]
fn messages_are_logarithmic_in_p() {
    let (m, n, k) = (128, 96, 4);
    for p in [4usize, 16] {
        let out = run(m, n, k, p, Algo::Hpc2D, 2);
        for s in &out.rank_comm {
            let msgs = s.total_messages();
            // 6 collectives/iter (+objective+setup), each O(log p) with a
            // small constant: bound messages by 40·log2(p)+40 per iter.
            let lg = (p as f64).log2().ceil() as u64;
            let bound = (40 * lg + 40) * 2;
            assert!(
                msgs <= bound,
                "p={p}: {msgs} messages exceeds O(log p) bound {bound}"
            );
        }
    }
}

#[test]
fn hpc_2d_communicates_less_than_naive_squarish() {
    // The headline claim: for squarish matrices HPC-NMF-2D moves
    // asymptotically less data than Naive.
    // Dimensions large enough that the O(k²) all-reduce terms are
    // negligible next to the O(√(mnk²/p)) factor-matrix traffic.
    let (m, n, k, p) = (240, 240, 4, 16);
    let naive = run(m, n, k, p, Algo::Naive, 3);
    let hpc2d = run(m, n, k, p, Algo::Hpc2D, 3);
    let naive_words = total_comm(&naive).total_words();
    let hpc_words = total_comm(&hpc2d).total_words();
    assert!(
        (hpc_words as f64) < 0.5 * naive_words as f64,
        "HPC-NMF-2D ({hpc_words} words) should communicate far less than Naive ({naive_words})"
    );
}

#[test]
fn hpc_1d_beats_2d_on_tall_skinny_bandwidth() {
    // For m/p > n the paper's optimal grid is 1D: O(nk) words beats the
    // 2D grid's row-dimension terms.
    let (m, n, k, p) = (512, 16, 4, 8);
    let oned = run(m, n, k, p, Algo::Hpc1D, 2);
    let square = run(m, n, k, p, Algo::HpcGrid(Grid::new(4, 2)), 2);
    let w1 = total_comm(&oned).total_words();
    let w2 = total_comm(&square).total_words();
    assert!(
        w1 < w2,
        "1D grid ({w1} words) should beat 2D ({w2}) on tall-skinny input"
    );
}

#[test]
fn sparse_and_dense_costs_are_identical() {
    // §5: "the communication costs of Algorithm 3 are the same for dense
    // and sparse data matrices (the data matrix itself is never
    // communicated)".
    let (m, n, k, p) = (48, 48, 3, 4);
    let dense = {
        let a = Input::Dense(Mat::uniform(m, n, 7));
        factorize(&a, p, Algo::Hpc2D, &NmfConfig::new(k).with_max_iters(2))
    };
    let sparse = {
        let a = Input::Sparse(nmf_sparse::gen::erdos_renyi(m, n, 0.1, 7));
        factorize(&a, p, Algo::Hpc2D, &NmfConfig::new(k).with_max_iters(2))
    };
    for (d, s) in dense.rank_comm.iter().zip(&sparse.rank_comm) {
        assert_eq!(d.total_words(), s.total_words());
        assert_eq!(d.total_messages(), s.total_messages());
    }
}

#[test]
fn communication_is_independent_of_solver() {
    // The collective pattern is fixed by the algorithm, not the NLS
    // method.
    let (m, n, k, p) = (48, 36, 3, 6);
    let input = Input::Dense(Mat::uniform(m, n, 8));
    let mut words = Vec::new();
    for solver in SolverKind::ALL {
        let out = factorize(
            &input,
            p,
            Algo::Hpc2D,
            &NmfConfig::new(k).with_max_iters(3).with_solver(solver),
        );
        words.push(total_comm(&out).total_words());
    }
    assert_eq!(words[0], words[1]);
    assert_eq!(words[1], words[2]);
}
