//! Checkpoint/resume determinism for the step-wise engine: running `N`
//! iterations, exporting the factors, and continuing in a *fresh* engine
//! must reproduce the uninterrupted trajectory **bit-for-bit**, for all
//! three communication schemes.
//!
//! This is the property that makes the engine a serving substrate:
//! factors exported mid-run are complete checkpoints (no hidden solver
//! or workspace state carries information between iterations), so a
//! crashed or migrated worker resumes exactly where it left off.

use hpc_nmf::checkpoint::read_checkpoint;
use hpc_nmf::dist::Dist1D;
use hpc_nmf::engine::{AnlsEngine, Grid2D, LocalScheme, Replicated1D, SplitBlocks};
use hpc_nmf::prelude::*;
use hpc_nmf::seq::nmf_seq_from;
use hpc_nmf::{init_ht, init_w};
use nmf_matrix::rng::Fill;
use nmf_matrix::Mat;
use nmf_vmpi::universe;
use std::path::PathBuf;

const TOTAL: usize = 6;
const BREAK_AT: usize = 3;

fn test_input(m: usize, n: usize, seed: u64) -> Input {
    Input::Dense(Mat::uniform(m, n, seed))
}

fn config() -> NmfConfig {
    NmfConfig::new(4).with_max_iters(TOTAL).with_seed(11)
}

#[test]
fn sequential_checkpoint_resume_is_bit_identical() {
    let input = test_input(33, 26, 5);
    let (m, n) = input.shape();
    let cfg = config();
    let w0 = init_w(m, cfg.k, cfg.seed);
    let ht0 = init_ht(n, cfg.k, cfg.seed);

    // Uninterrupted run.
    let mut full = AnlsEngine::new(
        LocalScheme::new(m, n),
        &input,
        &cfg,
        w0.clone(),
        ht0.clone(),
    );
    for _ in 0..TOTAL {
        full.step();
    }

    // Interrupted at BREAK_AT: export factors, resume in a fresh engine.
    let mut first = AnlsEngine::new(LocalScheme::new(m, n), &input, &cfg, w0, ht0);
    for _ in 0..BREAK_AT {
        first.step();
    }
    let state = first.convergence_state();
    let (w_ck, ht_ck) = first.factors();
    let (w_ck, ht_ck) = (w_ck.clone(), ht_ck.clone());
    drop(first);

    let mut resumed = AnlsEngine::new(LocalScheme::new(m, n), &input, &cfg, w_ck, ht_ck);
    resumed.restore_convergence_state(state);
    for _ in 0..(TOTAL - BREAK_AT) {
        resumed.step();
    }

    let (wf, htf) = full.factors();
    let (wr, htr) = resumed.factors();
    assert_eq!(wf, wr, "resumed W diverged from the uninterrupted run");
    assert_eq!(htf, htr, "resumed H diverged from the uninterrupted run");
    // Objective trajectories after the checkpoint agree bit-for-bit too.
    let tail: Vec<f64> = full.records()[BREAK_AT..]
        .iter()
        .map(|r| r.objective)
        .collect();
    let resumed_hist: Vec<f64> = resumed.records().iter().map(|r| r.objective).collect();
    assert_eq!(tail, resumed_hist, "objective trajectory diverged");
}

#[test]
fn stepped_engine_matches_run_to_completion_driver() {
    let input = test_input(28, 21, 9);
    let (m, n) = input.shape();
    let cfg = config();
    let w0 = init_w(m, cfg.k, cfg.seed);
    let ht0 = init_ht(n, cfg.k, cfg.seed);

    let driver = nmf_seq_from(&input, &cfg, w0.clone(), ht0.clone());
    let mut engine = AnlsEngine::new(LocalScheme::new(m, n), &input, &cfg, w0, ht0);
    for _ in 0..TOTAL {
        engine.step();
    }
    let (w, ht) = engine.factors();
    assert_eq!(&driver.w, w, "step-wise W differs from driver");
    assert_eq!(driver.h, ht.transpose(), "step-wise H differs from driver");
}

/// Runs `p` ranks of the naive scheme; each rank steps `first` times,
/// then (if `resume`) exports its factors and continues in a fresh
/// engine for `second` steps. Returns each rank's final factors.
fn naive_factors(
    input: &Input,
    p: usize,
    cfg: &NmfConfig,
    first: usize,
    second: usize,
    resume: bool,
) -> Vec<(Mat, Mat)> {
    let (m, n) = input.shape();
    let w0 = init_w(m, cfg.k, cfg.seed);
    let ht0 = init_ht(n, cfg.k, cfg.seed);
    let dist_m = Dist1D::new(m, p);
    let dist_n = Dist1D::new(n, p);
    universe::run(p, |comm| {
        let r = comm.rank();
        let rows = dist_m.part(r);
        let cols = dist_n.part(r);
        let row_block = input.block(rows.offset, 0, rows.len, n);
        let col_block = input.block(0, cols.offset, m, cols.len);
        let data = SplitBlocks {
            row_block: &row_block,
            col_block: &col_block,
        };
        let scheme = Replicated1D::new(comm, (m, n), cfg.k);
        let mut engine = AnlsEngine::new(
            scheme,
            SplitBlocks {
                row_block: &row_block,
                col_block: &col_block,
            },
            cfg,
            w0.rows_block(rows.offset, rows.len),
            ht0.rows_block(cols.offset, cols.len),
        );
        for _ in 0..first {
            engine.step();
        }
        if resume {
            let (w_ck, ht_ck) = engine.factors();
            let (w_ck, ht_ck) = (w_ck.clone(), ht_ck.clone());
            drop(engine);
            let scheme = Replicated1D::new(comm, (m, n), cfg.k);
            engine = AnlsEngine::new(scheme, data, cfg, w_ck, ht_ck);
        }
        for _ in 0..second {
            engine.step();
        }
        let (w, ht) = engine.factors();
        (w.clone(), ht.clone())
    })
    .into_iter()
    .map(|r| r.result)
    .collect()
}

#[test]
fn naive_checkpoint_resume_is_bit_identical() {
    let input = test_input(30, 24, 7);
    let cfg = config();
    for p in [2usize, 3] {
        let full = naive_factors(&input, p, &cfg, TOTAL, 0, false);
        let resumed = naive_factors(&input, p, &cfg, BREAK_AT, TOTAL - BREAK_AT, true);
        for (rank, (f, r)) in full.iter().zip(&resumed).enumerate() {
            assert_eq!(f.0, r.0, "naive p={p} rank {rank}: W diverged after resume");
            assert_eq!(f.1, r.1, "naive p={p} rank {rank}: H diverged after resume");
        }
    }
}

/// The Grid2D analogue of [`naive_factors`].
fn hpc_factors(
    input: &Input,
    grid: Grid,
    cfg: &NmfConfig,
    first: usize,
    second: usize,
    resume: bool,
) -> Vec<(Mat, Mat)> {
    let (m, n) = input.shape();
    let w0 = init_w(m, cfg.k, cfg.seed);
    let ht0 = init_ht(n, cfg.k, cfg.seed);
    let dist_m = Dist1D::new(m, grid.pr);
    let dist_n = Dist1D::new(n, grid.pc);
    universe::run(grid.size(), |comm| {
        let (i, j) = grid.coords(comm.rank());
        let rows = dist_m.part(i);
        let cols = dist_n.part(j);
        let local = input.block(rows.offset, cols.offset, rows.len, cols.len);
        let wpart = Dist1D::new(rows.len, grid.pc).part(j);
        let hpart = Dist1D::new(cols.len, grid.pr).part(i);
        let w0_local = w0.rows_block(rows.offset + wpart.offset, wpart.len);
        let ht0_local = ht0.rows_block(cols.offset + hpart.offset, hpart.len);
        let scheme = Grid2D::new(comm, grid, (m, n), cfg.k);
        let mut engine = AnlsEngine::new(scheme, &local, cfg, w0_local, ht0_local);
        for _ in 0..first {
            engine.step();
        }
        if resume {
            let (w_ck, ht_ck) = engine.factors();
            let (w_ck, ht_ck) = (w_ck.clone(), ht_ck.clone());
            drop(engine);
            // A fresh scheme re-splits the grid communicators, exactly
            // as a restarted job would.
            let scheme = Grid2D::new(comm, grid, (m, n), cfg.k);
            engine = AnlsEngine::new(scheme, &local, cfg, w_ck, ht_ck);
        }
        for _ in 0..second {
            engine.step();
        }
        let (w, ht) = engine.factors();
        (w.clone(), ht.clone())
    })
    .into_iter()
    .map(|r| r.result)
    .collect()
}

#[test]
fn hpc_checkpoint_resume_is_bit_identical() {
    let input = test_input(36, 28, 13);
    let cfg = config();
    for grid in [
        Grid::new(2, 2),
        Grid::new(4, 1),
        Grid::new(1, 3),
        Grid::new(3, 2),
    ] {
        let full = hpc_factors(&input, grid, &cfg, TOTAL, 0, false);
        let resumed = hpc_factors(&input, grid, &cfg, BREAK_AT, TOTAL - BREAK_AT, true);
        for (rank, (f, r)) in full.iter().zip(&resumed).enumerate() {
            assert_eq!(
                f.0, r.0,
                "hpc {}x{} rank {rank}: W diverged after resume",
                grid.pr, grid.pc
            );
            assert_eq!(
                f.1, r.1,
                "hpc {}x{} rank {rank}: H diverged after resume",
                grid.pr, grid.pc
            );
        }
    }
}

#[test]
fn resume_preserves_early_stop_decisions() {
    // With the convergence state restored, a resumed RelTol run stops at
    // the same global iteration as the uninterrupted one.
    let input = test_input(30, 22, 17);
    let (m, n) = input.shape();
    let cfg = NmfConfig::new(3)
        .with_max_iters(100)
        .with_tol(1e-7)
        .with_seed(5);
    let w0 = init_w(m, cfg.k, cfg.seed);
    let ht0 = init_ht(n, cfg.k, cfg.seed);

    let mut full = AnlsEngine::new(
        LocalScheme::new(m, n),
        &input,
        &cfg,
        w0.clone(),
        ht0.clone(),
    );
    let reason_full = full.run();
    let total = full.iterations();
    assert!(total < 100, "tolerance should stop well before max_iters");
    assert!(
        matches!(
            reason_full,
            StopReason::Converged | StopReason::ObjectiveIncreased
        ),
        "unexpected stop reason {reason_full:?}"
    );

    let brk = total / 2;
    let mut first = AnlsEngine::new(LocalScheme::new(m, n), &input, &cfg, w0, ht0);
    for _ in 0..brk {
        first.step();
    }
    let state = first.convergence_state();
    let (w_ck, ht_ck) = first.factors();
    let (w_ck, ht_ck) = (w_ck.clone(), ht_ck.clone());
    let mut resumed = AnlsEngine::new(LocalScheme::new(m, n), &input, &cfg, w_ck, ht_ck);
    resumed.restore_convergence_state(state);
    let reason_resumed = resumed.run();
    assert_eq!(reason_resumed, reason_full);
    assert_eq!(
        resumed.iterations(),
        total,
        "resumed run must stop at the same global iteration"
    );
}

/* ---------------- durability: the same property, through disk ----------------
 *
 * The engine-level tests above prove factors are complete checkpoints in
 * memory; these prove the *file format* preserves that: save → load →
 * continue is bit-identical to an uninterrupted run for all three
 * communication schemes, and damaged files are rejected with specific
 * errors instead of resuming garbage.
 */

fn tmp_ckpt(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hpc_nmf_ckpt_{}_{}.bin", tag, std::process::id()))
}

fn session(input: &Input, algo: Algo, p: usize, cfg: &NmfConfig) -> Model {
    Nmf::on(input)
        .config(*cfg)
        .algo(algo)
        .ranks(p)
        .build()
        .expect("valid session")
}

#[test]
fn disk_checkpoint_resume_is_bit_identical_for_all_schemes() {
    let input = test_input(34, 26, 21);
    let cfg = config();
    for (tag, algo, p) in [
        ("seq", Algo::Sequential, 1),
        ("naive", Algo::Naive, 3),
        ("hpc2d", Algo::Hpc2D, 4),
        ("hpcgrid", Algo::HpcGrid(Grid::new(3, 2)), 6),
    ] {
        // Uninterrupted run.
        let mut full = session(&input, algo, p, &cfg);
        for _ in 0..TOTAL {
            full.step();
        }
        let (wf, hf) = full.factors();

        // Interrupted run: save to disk, drop the whole session (its
        // universe threads included), reload, continue.
        let mut first = session(&input, algo, p, &cfg);
        for _ in 0..BREAK_AT {
            first.step();
        }
        let path = tmp_ckpt(tag);
        first.save(&path).expect("checkpoint writes");
        drop(first);

        let mut resumed = Model::load(&path, &input).expect("checkpoint loads");
        assert_eq!(
            resumed.iterations(),
            BREAK_AT,
            "{tag}: resumed model must remember its iteration count"
        );
        for _ in 0..(TOTAL - BREAK_AT) {
            resumed.step();
        }
        let (wr, hr) = resumed.factors();
        assert_eq!(wf, wr, "{tag}: W diverged after a disk round-trip");
        assert_eq!(hf, hr, "{tag}: H diverged after a disk round-trip");

        let tail: Vec<f64> = full.records()[BREAK_AT..]
            .iter()
            .map(|r| r.objective)
            .collect();
        let rtail: Vec<f64> = resumed.records().iter().map(|r| r.objective).collect();
        assert_eq!(tail, rtail, "{tag}: objective trajectory diverged");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn disk_resume_preserves_early_stop_decisions() {
    // A RelTol run checkpointed mid-flight stops at the same global
    // iteration with the same reason after a disk round-trip.
    let input = test_input(30, 22, 17);
    let cfg = NmfConfig::new(3)
        .with_max_iters(100)
        .with_tol(1e-7)
        .with_seed(5);
    let mut full = session(&input, Algo::Hpc2D, 4, &cfg);
    let reason_full = full.run();
    let total = full.iterations();
    assert!(total < 100);

    let mut first = session(&input, Algo::Hpc2D, 4, &cfg);
    for _ in 0..total / 2 {
        first.step();
    }
    let path = tmp_ckpt("earlystop");
    first.save(&path).expect("checkpoint writes");
    drop(first);
    let mut resumed = Model::load(&path, &input).expect("checkpoint loads");
    let reason_resumed = resumed.run();
    assert_eq!(reason_resumed, reason_full);
    assert_eq!(resumed.iterations(), total);
    std::fs::remove_file(&path).ok();
}

/// Writes `bytes` to a fresh temp file and returns the path.
fn write_tmp(tag: &str, bytes: &[u8]) -> PathBuf {
    let path = tmp_ckpt(tag);
    std::fs::write(&path, bytes).expect("test file writes");
    path
}

/// A valid checkpoint file's bytes, plus the input it belongs to.
fn valid_checkpoint_bytes(tag: &str) -> (Vec<u8>, Input) {
    let input = test_input(28, 20, 23);
    let mut model = session(&input, Algo::Hpc2D, 4, &config());
    model.step();
    model.step();
    let path = tmp_ckpt(tag);
    model.save(&path).expect("checkpoint writes");
    let bytes = std::fs::read(&path).expect("checkpoint reads");
    std::fs::remove_file(&path).ok();
    (bytes, input)
}

/// FNV-1a 64 (mirrors the checkpoint module's checksum for test-side
/// re-stamping after deliberate edits).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn truncated_checkpoints_are_rejected() {
    let (bytes, input) = valid_checkpoint_bytes("trunc_src");
    for cut in [0, 7, 11, 30, bytes.len() / 2, bytes.len() - 1] {
        let path = write_tmp("trunc", &bytes[..cut]);
        let err = Model::load(&path, &input).expect_err("truncation must not load");
        assert!(
            matches!(err, NmfError::Corrupt { .. }),
            "cut at {cut}: expected Corrupt, got {err:?}"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn wrong_version_is_rejected_before_the_checksum() {
    let (mut bytes, input) = valid_checkpoint_bytes("ver_src");
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    let path = write_tmp("ver", &bytes);
    let err = Model::load(&path, &input).expect_err("future version must not load");
    assert!(
        matches!(
            err,
            NmfError::UnsupportedVersion {
                found: 99,
                supported: 2,
                ..
            }
        ),
        "expected UnsupportedVersion, got {err:?}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn flipped_byte_fails_the_checksum() {
    let (mut bytes, input) = valid_checkpoint_bytes("flip_src");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    let path = write_tmp("flip", &bytes);
    let err = Model::load(&path, &input).expect_err("corruption must not load");
    assert!(matches!(err, NmfError::Corrupt { .. }), "got {err:?}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn mismatched_input_shape_is_rejected() {
    let (bytes, _input) = valid_checkpoint_bytes("shape_src");
    let path = write_tmp("shape", &bytes);
    // Same k, different m and n.
    let other = test_input(30, 20, 9);
    let err = Model::load(&path, &other).expect_err("wrong shape must not load");
    assert!(
        matches!(err, NmfError::CheckpointMismatch { .. }),
        "got {err:?}"
    );
    let other_n = test_input(28, 22, 9);
    let err = Model::load(&path, &other_n).expect_err("wrong n must not load");
    assert!(
        matches!(err, NmfError::CheckpointMismatch { .. }),
        "got {err:?}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn edited_k_fails_the_fingerprint_or_shape_check() {
    // Bump the stored k inside the meta block and re-stamp the trailing
    // checksum (simulating a deliberate header edit rather than random
    // corruption). Layout: magic(8) version(4) meta_len(8), then meta =
    // m(8) n(8) ranks(8) algo(4) pr(8) pc(8) k(8) at meta offset 44.
    let (mut bytes, input) = valid_checkpoint_bytes("kedit_src");
    let k_off = 8 + 4 + 8 + 44;
    let old_k = u64::from_le_bytes(bytes[k_off..k_off + 8].try_into().unwrap());
    bytes[k_off..k_off + 8].copy_from_slice(&(old_k + 1).to_le_bytes());
    let body = bytes.len() - 8;
    let sum = fnv1a(&bytes[..body]);
    bytes[body..].copy_from_slice(&sum.to_le_bytes());
    let path = write_tmp("kedit", &bytes);
    let err = Model::load(&path, &input).expect_err("edited k must not load");
    assert!(
        matches!(
            err,
            NmfError::FingerprintMismatch { .. } | NmfError::CheckpointMismatch { .. }
        ),
        "got {err:?}"
    );
    std::fs::remove_file(&path).ok();
}

/* ---------------- elasticity: the regrid matrix ----------------
 *
 * A checkpoint taken on any scheme must seed a session on any other
 * (docs/elasticity.md): the decoder globalizes the per-rank blocks and
 * the resume builder re-shards them along the target layout. Both
 * halves are exact row copies, so the *factors* survive every
 * source→target combination bit-for-bit; the continued run then
 * reaches the same objective (only the new scheme's reduction orders
 * differ).
 */

/// Checkpoint sources: one per communication scheme.
fn regrid_sources() -> Vec<(&'static str, Algo, usize)> {
    vec![
        ("seq", Algo::Sequential, 1),
        ("hpc1d-4", Algo::Hpc1D, 4),
        ("grid4x2", Algo::HpcGrid(Grid::new(4, 2)), 8),
    ]
}

/// Resume targets: a different scheme, rank count, and grid each.
fn regrid_targets() -> Vec<(&'static str, RegridTarget)> {
    vec![
        ("seq", RegridTarget::new().algo(Algo::Sequential)),
        ("hpc1d-2", RegridTarget::new().algo(Algo::Hpc1D).ranks(2)),
        ("grid2x2", RegridTarget::new().grid(Grid::new(2, 2))),
        ("grid1x8", RegridTarget::new().grid(Grid::new(1, 8))),
    ]
}

#[test]
fn regridded_factors_globalize_bit_identically() {
    let input = test_input(28, 20, 31);
    let cfg = config();
    for (stag, algo, p) in regrid_sources() {
        let mut src = session(&input, algo, p, &cfg);
        for _ in 0..BREAK_AT {
            src.step();
        }
        let (w_src, h_src) = src.factors();
        let path = tmp_ckpt(&format!("regrid_{stag}"));
        src.save(&path).expect("checkpoint writes");
        drop(src);

        // The decoder's globalizer reassembles the exact factors the
        // blocks were sliced from.
        let ck = read_checkpoint(&path).expect("checkpoint reads");
        assert_eq!(ck.w, w_src, "{stag}: globalized W differs");
        assert_eq!(ck.ht.transpose(), h_src, "{stag}: globalized H differs");

        // ...and every regrid target re-shards them without losing a
        // bit: the resumed session's assembled factors are identical.
        for (ttag, target) in regrid_targets() {
            let resumed = Model::load_regrid(&path, &input, target)
                .unwrap_or_else(|e| panic!("{stag}->{ttag}: {e}"));
            assert_eq!(
                resumed.iterations(),
                BREAK_AT,
                "{stag}->{ttag}: iteration count lost"
            );
            let (w_r, h_r) = resumed.factors();
            assert_eq!(w_r, w_src, "{stag}->{ttag}: resharded W lost bits");
            assert_eq!(h_r, h_src, "{stag}->{ttag}: resharded H lost bits");
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn regridded_resume_reaches_the_same_objective() {
    let input = test_input(28, 20, 31);
    let cfg = config();
    for (stag, algo, p) in regrid_sources() {
        let mut full = session(&input, algo, p, &cfg);
        for _ in 0..TOTAL {
            full.step();
        }
        let obj_full = full.records().last().expect("records").objective;

        let mut first = session(&input, algo, p, &cfg);
        for _ in 0..BREAK_AT {
            first.step();
        }
        let path = tmp_ckpt(&format!("regrid_obj_{stag}"));
        first.save(&path).expect("checkpoint writes");
        drop(first);

        for (ttag, target) in regrid_targets() {
            let mut resumed = Model::load_regrid(&path, &input, target)
                .unwrap_or_else(|e| panic!("{stag}->{ttag}: {e}"));
            for _ in 0..(TOTAL - BREAK_AT) {
                resumed.step();
            }
            let obj_r = resumed.records().last().expect("records").objective;
            let rel = ((obj_r - obj_full) / obj_full).abs();
            assert!(
                rel < 1e-8,
                "{stag}->{ttag}: objective diverged after regrid: \
                 {obj_full} vs {obj_r} (rel {rel:e})"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn pure_resume_through_the_regrid_path_stays_bit_identical() {
    // An empty target replays the recorded grid: the regrid entry
    // points continue the exact trajectory, same as Model::load.
    let input = test_input(28, 20, 31);
    let cfg = config();
    let mut full = session(&input, Algo::Hpc2D, 4, &cfg);
    for _ in 0..TOTAL {
        full.step();
    }
    let (wf, hf) = full.factors();

    let mut first = session(&input, Algo::Hpc2D, 4, &cfg);
    for _ in 0..BREAK_AT {
        first.step();
    }
    let path = tmp_ckpt("regrid_pure");
    first.save(&path).expect("checkpoint writes");
    drop(first);

    let ck = read_checkpoint(&path).expect("checkpoint reads");
    let mut resumed = Nmf::resume_from(ck).on(&input).build().expect("builds");
    assert_eq!(resumed.algo(), Algo::Hpc2D);
    assert_eq!(resumed.ranks(), 4);
    for _ in 0..(TOTAL - BREAK_AT) {
        resumed.step();
    }
    let (wr, hr) = resumed.factors();
    assert_eq!(wf, wr, "pure resume W diverged");
    assert_eq!(hf, hr, "pure resume H diverged");
    std::fs::remove_file(&path).ok();
}

#[test]
fn regrid_keeps_the_recorded_k_and_solver() {
    // k, solver, and seed define the trajectory being continued; no
    // regrid target can alter them.
    let input = test_input(28, 20, 31);
    let cfg = config();
    let mut src = session(&input, Algo::Hpc2D, 4, &cfg);
    src.step();
    let path = tmp_ckpt("regrid_pins");
    src.save(&path).expect("checkpoint writes");
    drop(src);
    for (_, target) in regrid_targets() {
        let resumed = Model::load_regrid(&path, &input, target).expect("loads");
        assert_eq!(resumed.config().k, cfg.k);
        assert_eq!(resumed.config().solver, cfg.solver);
        assert_eq!(resumed.config().seed, cfg.seed);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn regrid_rejects_a_mismatched_input_shape() {
    let input = test_input(28, 20, 31);
    let mut src = session(&input, Algo::Hpc2D, 4, &config());
    src.step();
    let path = tmp_ckpt("regrid_shape");
    src.save(&path).expect("checkpoint writes");
    drop(src);
    // The relaxed compatibility contract still pins the input shape:
    // the factors are meaningless against a different matrix.
    for other in [test_input(30, 20, 9), test_input(28, 22, 9)] {
        let err = Model::load_regrid(&path, &other, RegridTarget::new().grid(Grid::new(2, 2)))
            .expect_err("wrong shape must not regrid");
        assert!(
            matches!(err, NmfError::CheckpointMismatch { .. }),
            "got {err:?}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn regrid_rejects_an_unfittable_target_grid() {
    let input = test_input(28, 20, 31);
    let mut src = session(&input, Algo::Hpc2D, 4, &config());
    src.step();
    let path = tmp_ckpt("regrid_toobig");
    src.save(&path).expect("checkpoint writes");
    drop(src);
    // 16x16 over 28x20 leaves ranks without factor rows; the resume
    // builder runs the full build validation, so the usual actionable
    // error comes back instead of a bad session.
    let err = Model::load_regrid(&path, &input, RegridTarget::new().grid(Grid::new(16, 16)))
        .expect_err("unfittable grid must not build");
    assert!(matches!(err, NmfError::GridTooLarge { .. }), "got {err:?}");
    assert!(
        !fitting_grids(28, 20, 256).contains(&Grid::new(16, 16)),
        "fitting_grids must agree with the builder"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_builder_requires_an_input() {
    let input = test_input(28, 20, 31);
    let mut src = session(&input, Algo::Hpc2D, 4, &config());
    src.step();
    let path = tmp_ckpt("regrid_noinput");
    src.save(&path).expect("checkpoint writes");
    drop(src);
    let ck = read_checkpoint(&path).expect("checkpoint reads");
    let err = Nmf::resume_from(ck).build().expect_err("no input attached");
    assert!(matches!(err, NmfError::MissingInput), "got {err:?}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn windowed_policy_resume_stops_at_same_iteration() {
    // The windowed look-back and the budget clock live in
    // ConvergenceState, so a resumed WindowedBudget run reproduces the
    // uninterrupted run's stopping decision even when the window spans
    // the checkpoint boundary.
    let input = test_input(32, 24, 19);
    let (m, n) = input.shape();
    let cfg = NmfConfig::new(3)
        .with_max_iters(80)
        .with_seed(5)
        .with_convergence(ConvergencePolicy::WindowedBudget {
            window: 3,
            tol: 1e-6,
            budget: None,
        });
    let w0 = init_w(m, cfg.k, cfg.seed);
    let ht0 = init_ht(n, cfg.k, cfg.seed);

    let mut full = AnlsEngine::new(
        LocalScheme::new(m, n),
        &input,
        &cfg,
        w0.clone(),
        ht0.clone(),
    );
    let reason_full = full.run();
    let total = full.iterations();
    assert!(
        total < 80,
        "windowed tolerance should stop before max_iters"
    );

    // Break one iteration before the stop, so the window straddles the
    // checkpoint.
    let brk = total - 1;
    let mut first = AnlsEngine::new(LocalScheme::new(m, n), &input, &cfg, w0, ht0);
    for _ in 0..brk {
        first.step();
    }
    let state = first.convergence_state();
    let (w_ck, ht_ck) = first.factors();
    let (w_ck, ht_ck) = (w_ck.clone(), ht_ck.clone());
    let mut resumed = AnlsEngine::new(LocalScheme::new(m, n), &input, &cfg, w_ck, ht_ck);
    resumed.restore_convergence_state(state);
    let reason_resumed = resumed.run();
    assert_eq!(reason_resumed, reason_full);
    assert_eq!(
        resumed.iterations(),
        total,
        "windowed stop must land on the same global iteration after resume"
    );
}
