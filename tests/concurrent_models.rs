//! Concurrent use of `Model` handles — the property the serving layer
//! (`nmf_serve`) is built on.
//!
//! A `Model` is `Send` and owns its whole virtual-MPI universe, so many
//! models can step simultaneously from different OS threads without
//! sharing anything. These tests prove (a) that is safe, and (b) it is
//! *deterministic*: factors computed under heavy interleaving are
//! bit-identical to a serial run of the same spec — concurrency cannot
//! change any tenant's numerical results.

use hpc_nmf::prelude::*;
use nmf_matrix::rng::Fill;
use nmf_matrix::Mat;

fn test_input(m: usize, n: usize, seed: u64) -> Input {
    Input::Dense(Mat::uniform(m, n, seed))
}

fn build(input: &Input, k: usize, ranks: usize, iters: usize, seed: u64) -> Model {
    Nmf::on(input)
        .rank(k)
        .ranks(ranks)
        .algo(if ranks == 1 {
            Algo::Sequential
        } else {
            Algo::Hpc2D
        })
        .max_iters(iters)
        .seed(seed)
        .build()
        .expect("valid spec")
}

/// Eight models with distinct specs stepped from eight threads at once;
/// each must match its own serial twin bit-for-bit.
#[test]
fn parallel_models_match_serial_runs_bitwise() {
    let specs: Vec<(usize, usize, usize, usize, u64)> = (0..8)
        .map(|i| (20 + i, 14 + (i % 3), 3 + (i % 2), 5, 100 + i as u64))
        .collect();

    // Serial reference factors, one model at a time.
    let serial: Vec<(Mat, Mat)> = specs
        .iter()
        .map(|&(m, n, k, iters, seed)| {
            let input = test_input(m, n, seed);
            let mut model = build(&input, k, 1 + (seed % 2) as usize, iters, seed);
            while !model.is_finished() {
                model.step();
            }
            model.factors()
        })
        .collect();

    // The same specs stepped concurrently, one thread per model, with a
    // barrier so every thread's steps interleave with the others'.
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(specs.len()));
    let handles: Vec<_> = specs
        .iter()
        .map(|&(m, n, k, iters, seed)| {
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                let input = test_input(m, n, seed);
                let mut model = build(&input, k, 1 + (seed % 2) as usize, iters, seed);
                barrier.wait();
                while !model.is_finished() {
                    model.step();
                    std::thread::yield_now();
                }
                model.factors()
            })
        })
        .collect();

    for (handle, (w_serial, h_serial)) in handles.into_iter().zip(&serial) {
        let (w, h) = handle.join().expect("model thread");
        assert_eq!(w.as_slice(), w_serial.as_slice(), "W bit-identical");
        assert_eq!(h.as_slice(), h_serial.as_slice(), "H bit-identical");
    }
}

/// Incremental stepping (`step_up_to` in uneven slices, as a scheduler
/// grants quanta) reaches the same factors as one uninterrupted run.
#[test]
fn sliced_stepping_matches_a_full_run_bitwise() {
    let input = test_input(30, 22, 9);
    let mut whole = build(&input, 4, 2, 9, 7);
    let done = whole.step_up_to(9);
    assert_eq!(done.steps_run, 9);
    assert!(whole.is_finished());
    let (w_whole, h_whole) = whole.factors();

    let mut sliced = build(&input, 4, 2, 9, 7);
    let mut granted = 0;
    for grant in [1, 3, 2, 4, 5] {
        let p = sliced.step_up_to(grant);
        granted += p.steps_run;
        assert!(p.steps_run <= grant);
    }
    assert_eq!(granted, 9, "cap stops the slices at max_iters");
    assert!(sliced.is_finished());
    assert_eq!(sliced.remaining_iters(), 0);
    let (w_sliced, h_sliced) = sliced.factors();
    assert_eq!(w_sliced.as_slice(), w_whole.as_slice());
    assert_eq!(h_sliced.as_slice(), h_whole.as_slice());
}

/// Models moved into worker threads mid-run (submitted on one thread,
/// stepped on another, harvested on a third) keep working — the ownership
/// pattern of a serving process.
#[test]
fn models_survive_moves_across_threads() {
    let input = test_input(24, 18, 3);
    let mut model = build(&input, 3, 2, 6, 21);
    model.step_up_to(2);

    // Move to a stepping thread.
    let model = std::thread::spawn(move || {
        let mut model = model;
        model.step_up_to(2);
        model
    })
    .join()
    .expect("stepping thread");

    // Move to a finishing thread.
    let (iters, w) = std::thread::spawn(move || {
        let mut model = model;
        model.step_up_to(usize::MAX);
        (model.iterations(), model.factors().0)
    })
    .join()
    .expect("finishing thread");
    assert_eq!(iters, 6);
    assert!(w.as_slice().iter().all(|&x| x.is_finite() && x >= 0.0));
}
