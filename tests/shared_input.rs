//! Shared pre-sharded inputs ride the exact same extraction code as a
//! fresh build — so sharing must be invisible in the factors (bit for
//! bit) and visible only in the extraction counter and the mmap path's
//! memory profile. See `docs/sharded-input.md`.

use hpc_nmf::prelude::*;
use nmf_data::materialize_nmfs;
use nmf_data::DatasetKind;
use nmf_matrix::Mat;
use nmf_sparse::gen::erdos_renyi;

fn bits_equal(a: &Mat, b: &Mat) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn config(k: usize) -> NmfConfig {
    NmfConfig::new(k).with_max_iters(4).with_seed(11)
}

fn fit_fresh(input: &Input, k: usize) -> (Mat, Mat) {
    let mut model = Nmf::on(input)
        .config(config(k))
        .algo(Algo::Hpc2D)
        .ranks(4)
        .build()
        .expect("valid request");
    model.run();
    model.factors()
}

/// Two builds and a refit off one `SharedInput` reproduce the factors
/// of three fresh extractions, bit for bit.
#[test]
fn shared_input_is_bit_identical_to_fresh_extraction() {
    let input = Input::Sparse(erdos_renyi(48, 36, 0.2, 3));
    let shared = SharedInput::new(input.clone());

    let mut first = Nmf::on_shared(&shared)
        .config(config(4))
        .algo(Algo::Hpc2D)
        .ranks(4)
        .build()
        .expect("valid request");
    first.run();
    let (w1, h1) = first.factors();

    let mut second = Nmf::on_shared(&shared)
        .config(config(5))
        .algo(Algo::Hpc2D)
        .ranks(4)
        .build()
        .expect("valid request");
    second.run();
    let (w2, h2) = second.factors();

    second.refit(config(6)).expect("refit");
    second.run();
    let (w3, h3) = second.factors();

    for (k, (w, h)) in [(4, (&w1, &h1)), (5, (&w2, &h2)), (6, (&w3, &h3))] {
        let (fw, fh) = fit_fresh(&input, k);
        assert!(
            bits_equal(w, &fw) && bits_equal(h, &fh),
            "shared-input factors diverged from fresh extraction at k={k}"
        );
    }

    // Two builds + one refit over one grid shape: exactly one
    // extraction — the acceptance metric for block-extraction sharing.
    assert_eq!(shared.extractions(), 1);
    assert_eq!(shared.cached_shardings(), 1);
}

/// A three-value rank sweep — build once, refit twice — extracts the
/// per-rank blocks exactly once.
#[test]
fn rank_sweep_extracts_exactly_once() {
    let shared = SharedInput::new(Input::Sparse(erdos_renyi(40, 30, 0.15, 9)));
    let mut model: Option<Model> = None;
    for k in [3, 5, 7] {
        match &mut model {
            None => {
                model = Some(
                    Nmf::on_shared(&shared)
                        .config(config(k))
                        .algo(Algo::Hpc2D)
                        .ranks(4)
                        .build()
                        .expect("valid request"),
                );
            }
            Some(m) => m.refit(config(k)).expect("refit"),
        }
        model.as_mut().expect("built").run();
    }
    assert_eq!(
        shared.extractions(),
        1,
        "a rank sweep over one grid shape must shard the input once"
    );
}

/// An mmap-ingested NMFS file factorizes bit-identically to the same
/// matrix resident in RAM, for both the 2D-grid and the naive (split
/// row/column stripe) distributions.
#[test]
fn mmap_ingest_is_bit_identical_to_resident() {
    let path = std::env::temp_dir().join(format!("nmf-shared-it-{}.nmfs", std::process::id()));
    materialize_nmfs(DatasetKind::Ssyn, 2400, 5, &path).expect("materialize");
    let resident = SharedInput::new(DatasetKind::Ssyn.build(2400, 5).input);
    let mapped = SharedInput::open_mmap(&path).expect("open NMFS");
    assert!(mapped.is_mmap() && mapped.is_sparse());
    assert_eq!(mapped.shape(), resident.shape());

    for algo in [Algo::Hpc2D, Algo::Naive] {
        let fit = |shared: &SharedInput| {
            let mut model = Nmf::on_shared(shared)
                .config(config(4))
                .algo(algo)
                .ranks(4)
                .build()
                .expect("valid request");
            model.run();
            (model.objective(), model.factors())
        };
        let (obj_r, (wr, hr)) = fit(&resident);
        let (obj_m, (wm, hm)) = fit(&mapped);
        assert_eq!(
            obj_m.to_bits(),
            obj_r.to_bits(),
            "{algo:?}: objective diverged between mmap and resident"
        );
        assert!(
            bits_equal(&wm, &wr) && bits_equal(&hm, &hr),
            "{algo:?}: factors diverged between mmap and resident"
        );
    }
    std::fs::remove_file(&path).ok();
}
