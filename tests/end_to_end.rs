//! End-to-end tests over the paper's (scaled) datasets: every dataset ×
//! algorithm combination must run, converge, and produce valid factors.

use hpc_nmf::prelude::*;
use hpc_nmf::total_comm;
use nmf_data::DatasetKind;

fn check_run(kind: DatasetKind, algo: Algo, p: usize, k: usize) -> NmfOutput {
    let scale = match kind {
        DatasetKind::Dsyn | DatasetKind::Ssyn => 1000,
        DatasetKind::Video => 2000,
        DatasetKind::Webbase => 2000,
    };
    let data = kind.build(scale, 33);
    let (m, n) = data.input.shape();
    let out = factorize(&data.input, p, algo, &NmfConfig::new(k).with_max_iters(6));
    assert_eq!(out.w.shape(), (m, k), "{} {}", kind.name(), algo.name());
    assert_eq!(out.h.shape(), (k, n));
    assert!(out.w.all_nonnegative() && out.h.all_nonnegative());
    assert!(out.w.all_finite() && out.h.all_finite());
    assert!(out.rel_error.is_finite() && out.rel_error < 1.0);
    // The objective must improve on the initial iterate.
    let hist = out.history();
    assert!(
        hist.last().unwrap() <= hist.first().unwrap(),
        "{} {}: no improvement {hist:?}",
        kind.name(),
        algo.name()
    );
    out
}

#[test]
fn every_dataset_runs_on_every_algorithm() {
    for kind in DatasetKind::ALL {
        for algo in [Algo::Naive, Algo::Hpc1D, Algo::Hpc2D] {
            check_run(kind, algo, 4, 5);
        }
    }
}

#[test]
fn every_dataset_runs_sequentially() {
    for kind in DatasetKind::ALL {
        check_run(kind, Algo::Sequential, 1, 5);
    }
}

#[test]
fn hpc2d_moves_fewer_words_than_naive_on_squarish_datasets() {
    // The headline comparison (Fig 3a/c/e), at reduced scale, on the
    // actual datasets.
    for kind in [DatasetKind::Ssyn, DatasetKind::Dsyn, DatasetKind::Webbase] {
        let data = kind.build(1200, 5);
        let config = NmfConfig::new(8).with_max_iters(3);
        let naive = factorize(&data.input, 16, Algo::Naive, &config);
        let hpc = factorize(&data.input, 16, Algo::Hpc2D, &config);
        let wn = total_comm(&naive).total_words();
        let wh = total_comm(&hpc).total_words();
        assert!(
            wh < wn,
            "{}: HPC-2D words {wh} should undercut Naive {wn}",
            kind.name()
        );
    }
}

#[test]
fn video_grid_selection_is_1d() {
    let (m, n) = DatasetKind::Video.paper_dims();
    for p in [24, 96, 216, 384, 600] {
        let g = Algo::Hpc2D.grid(m, n, p);
        assert_eq!(g.pc, 1, "Video at p={p} should select a 1D grid, got {g:?}");
    }
}

#[test]
fn per_iteration_records_are_complete() {
    let data = DatasetKind::Ssyn.build(1500, 6);
    let iters = 4;
    let out = factorize(
        &data.input,
        6,
        Algo::Hpc2D,
        &NmfConfig::new(4).with_max_iters(iters),
    );
    assert_eq!(out.iters.len(), iters);
    for rec in &out.iters {
        assert!(rec.objective.is_finite());
        // Communication happened every iteration.
        assert!(rec.comm.total_messages() > 0);
    }
    assert_eq!(out.rank_comm.len(), 6);
}

#[test]
fn solver_menu_works_on_sparse_dataset() {
    let data = DatasetKind::Webbase.build(2500, 8);
    let mut finals = Vec::new();
    for solver in SolverKind::ALL {
        let out = factorize(
            &data.input,
            4,
            Algo::Hpc2D,
            &NmfConfig::new(4).with_max_iters(8).with_solver(solver),
        );
        finals.push((solver, out.objective));
    }
    // BPP (exact per-iteration solves) should be at least as good as MU
    // after equal iterations.
    let bpp = finals
        .iter()
        .find(|(s, _)| *s == SolverKind::Bpp)
        .unwrap()
        .1;
    let mu = finals.iter().find(|(s, _)| *s == SolverKind::Mu).unwrap().1;
    assert!(
        bpp <= mu * (1.0 + 1e-6) + 1e-9,
        "BPP ({bpp}) should converge at least as fast as MU ({mu})"
    );
}
