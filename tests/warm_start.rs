//! Warm-start (incremental) factorization tests: the paper's streaming
//! video scenario (§6.1.1) — when new data arrives, restarting ANLS from
//! the previous factors should converge much faster than a cold start.

use hpc_nmf::prelude::*;
use hpc_nmf::{factorize_from, init_ht};
use nmf_matrix::rng::Fill;
use nmf_matrix::{matmul, Mat};

/// A "video" whose background drifts slightly between two windows.
fn window(m: usize, n: usize, k: usize, drift: f64, seed: u64) -> Input {
    let w = Mat::uniform(m, k, seed);
    let h = Mat::uniform(k, n, seed + 1);
    let mut a = matmul(&w, &h);
    let noise = Mat::uniform(m, n, seed + 2);
    for (av, nv) in a.as_mut_slice().iter_mut().zip(noise.as_slice()) {
        *av += drift * nv;
    }
    Input::Dense(a)
}

#[test]
fn warm_start_converges_faster_than_cold() {
    let (m, n, k) = (60, 40, 4);
    let config = NmfConfig::new(k).with_max_iters(25);
    // Fit window 1 from scratch.
    let first = factorize(&window(m, n, k, 0.0, 10), 4, Algo::Hpc2D, &config);

    // Window 2: same planted structure, small drift.
    let second = window(m, n, k, 0.05, 10);
    let budget = NmfConfig::new(k).with_max_iters(3);
    let cold = factorize(&second, 4, Algo::Hpc2D, &budget);
    let mut ht_prev = first.h.transpose();
    // Previous factors may contain exact zeros; keep them valid inits.
    ht_prev.project_nonnegative();
    let warm = factorize_from(&second, 4, Algo::Hpc2D, &budget, first.w.clone(), ht_prev);
    assert!(
        warm.objective < cold.objective,
        "warm start ({}) should beat cold start ({}) on a small budget",
        warm.objective,
        cold.objective
    );
}

#[test]
fn warm_start_is_consistent_across_drivers() {
    let (m, n, k) = (36, 28, 3);
    let input = window(m, n, k, 0.1, 20);
    let w0 = Mat::uniform(m, k, 21);
    let ht0 = init_ht(n, k, 22);
    let config = NmfConfig::new(k).with_max_iters(4);
    let seq = factorize_from(
        &input,
        1,
        Algo::Sequential,
        &config,
        w0.clone(),
        ht0.clone(),
    );
    for (p, algo) in [(4usize, Algo::Hpc2D), (3, Algo::Naive), (2, Algo::Hpc1D)] {
        let par = factorize_from(&input, p, algo, &config, w0.clone(), ht0.clone());
        assert!(
            par.w.max_abs_diff(&seq.w) < 1e-8 && par.h.max_abs_diff(&seq.h) < 1e-8,
            "{} warm start diverged from sequential",
            algo.name()
        );
    }
}

#[test]
#[should_panic(expected = "w0 shape mismatch")]
fn warm_start_validates_shapes() {
    let input = window(20, 15, 3, 0.0, 30);
    let _ = factorize_from(
        &input,
        2,
        Algo::Hpc2D,
        &NmfConfig::new(3),
        Mat::zeros(5, 3),
        Mat::zeros(15, 3),
    );
}
