//! The split-phase (overlapped) Grid2D schedule is a pure *scheduling*
//! change: same collectives, same words, same tags — so the factor
//! trajectory must be **bit-identical** to the synchronous schedule, the
//! communication counters must match exactly, and checkpoints taken
//! through the overlapped schedule must resume cleanly under either
//! mode. See `docs/comm-overlap.md`.

use hpc_nmf::dist::Dist1D;
use hpc_nmf::engine::{AnlsEngine, Grid2D};
use hpc_nmf::prelude::*;
use hpc_nmf::{init_ht, init_w};
use nmf_matrix::rng::Fill;
use nmf_matrix::Mat;
use nmf_vmpi::{universe, CommStats};
use std::path::PathBuf;
use std::time::Duration;

const ITERS: usize = 5;

fn test_input(m: usize, n: usize, seed: u64) -> Input {
    Input::Dense(Mat::uniform(m, n, seed))
}

fn config() -> NmfConfig {
    NmfConfig::new(4).with_max_iters(ITERS).with_seed(23)
}

/// Runs `first` iterations with `overlap_first`, then (when `second > 0`)
/// exports the factors and continues in a fresh engine for `second`
/// iterations with `overlap_second` — the restart path a real job takes.
/// Returns each rank's final factors and its summed per-iteration
/// communication counters.
fn grid_run(
    input: &Input,
    grid: Grid,
    cfg: &NmfConfig,
    first: usize,
    overlap_first: bool,
    second: usize,
    overlap_second: bool,
) -> Vec<(Mat, Mat, CommStats)> {
    let (m, n) = input.shape();
    let w0 = init_w(m, cfg.k, cfg.seed);
    let ht0 = init_ht(n, cfg.k, cfg.seed);
    let dist_m = Dist1D::new(m, grid.pr);
    let dist_n = Dist1D::new(n, grid.pc);
    universe::run(grid.size(), |comm| {
        let (i, j) = grid.coords(comm.rank());
        let rows = dist_m.part(i);
        let cols = dist_n.part(j);
        let local = input.block(rows.offset, cols.offset, rows.len, cols.len);
        let wpart = Dist1D::new(rows.len, grid.pc).part(j);
        let hpart = Dist1D::new(cols.len, grid.pr).part(i);
        let w0_local = w0.rows_block(rows.offset + wpart.offset, wpart.len);
        let ht0_local = ht0.rows_block(cols.offset + hpart.offset, hpart.len);
        let scheme = Grid2D::new(comm, grid, (m, n), cfg.k).with_overlap(overlap_first);
        let mut engine = AnlsEngine::new(scheme, &local, cfg, w0_local, ht0_local);
        for _ in 0..first {
            engine.step();
        }
        let mut comm_total = CommStats::new();
        for rec in engine.records() {
            comm_total.merge(&rec.comm);
        }
        if second > 0 {
            let (w_ck, ht_ck) = engine.factors();
            let (w_ck, ht_ck) = (w_ck.clone(), ht_ck.clone());
            drop(engine);
            let scheme = Grid2D::new(comm, grid, (m, n), cfg.k).with_overlap(overlap_second);
            engine = AnlsEngine::new(scheme, &local, cfg, w_ck, ht_ck);
            for _ in 0..second {
                engine.step();
            }
            for rec in engine.records() {
                comm_total.merge(&rec.comm);
            }
        }
        let (w, ht) = engine.factors();
        (w.clone(), ht.clone(), comm_total)
    })
    .into_iter()
    .map(|r| r.result)
    .collect()
}

#[test]
fn overlapped_and_sync_factors_are_bit_identical() {
    let input = test_input(37, 29, 3);
    let cfg = config();
    // Pow2, prime, degenerate-1D, and ragged non-pow2 grids.
    for grid in [
        Grid::new(2, 2),
        Grid::new(1, 3),
        Grid::new(4, 1),
        Grid::new(3, 2),
        Grid::new(2, 3),
    ] {
        let sync = grid_run(&input, grid, &cfg, ITERS, false, 0, false);
        let ovl = grid_run(&input, grid, &cfg, ITERS, true, 0, true);
        for (rank, (s, o)) in sync.iter().zip(&ovl).enumerate() {
            assert_eq!(
                s.0, o.0,
                "{}x{} rank {rank}: W diverged under overlap",
                grid.pr, grid.pc
            );
            assert_eq!(
                s.1, o.1,
                "{}x{} rank {rank}: H diverged under overlap",
                grid.pr, grid.pc
            );
        }
    }
}

#[test]
fn overlapped_schedule_moves_the_same_words_and_messages() {
    let input = test_input(41, 33, 5);
    let cfg = config();
    for grid in [Grid::new(2, 2), Grid::new(3, 2)] {
        let sync = grid_run(&input, grid, &cfg, ITERS, false, 0, false);
        let ovl = grid_run(&input, grid, &cfg, ITERS, true, 0, true);
        for (rank, (s, o)) in sync.iter().zip(&ovl).enumerate() {
            for op in nmf_vmpi::Op::ALL {
                assert_eq!(
                    s.2.op(op).words,
                    o.2.op(op).words,
                    "{}x{} rank {rank}: {} words changed under overlap",
                    grid.pr,
                    grid.pc,
                    op.name()
                );
                assert_eq!(
                    s.2.op(op).messages,
                    o.2.op(op).messages,
                    "{}x{} rank {rank}: {} messages changed under overlap",
                    grid.pr,
                    grid.pc,
                    op.name()
                );
            }
        }
    }
}

#[test]
fn overlap_stats_expose_posts_and_a_nonzero_window() {
    let input = test_input(48, 40, 7);
    let cfg = config();
    let grid = Grid::new(2, 2);

    let sync = grid_run(&input, grid, &cfg, ITERS, false, 0, false);
    for (rank, r) in sync.iter().enumerate() {
        assert_eq!(r.2.total_posts(), 0, "sync rank {rank} recorded posts");
        assert_eq!(r.2.total_overlap(), Duration::ZERO);
    }

    let ovl = grid_run(&input, grid, &cfg, ITERS, true, 0, true);
    for (rank, r) in ovl.iter().enumerate() {
        // Seven collectives go split-phase per iteration: two Gram
        // all-reduces, two gathers, two reduce-scatters, and the
        // objective reduction (driven split-phase so its waits advance
        // the prefetched next-iteration ops).
        assert_eq!(
            r.2.total_posts(),
            7 * ITERS as u64,
            "rank {rank}: wrong split-phase post count"
        );
        assert!(
            r.2.total_overlap() > Duration::ZERO,
            "rank {rank}: no compute was hidden behind in-flight collectives"
        );
        for op in [
            nmf_vmpi::Op::AllGather,
            nmf_vmpi::Op::ReduceScatter,
            nmf_vmpi::Op::AllReduce,
        ] {
            let st = r.2.op(op);
            let expected = if op == nmf_vmpi::Op::AllReduce { 3 } else { 2 };
            assert_eq!(
                st.posts,
                expected * ITERS as u64,
                "rank {rank}: {} posts",
                op.name()
            );
            assert!(
                st.inflight >= st.overlap,
                "rank {rank}: {} inflight below its overlap window",
                op.name()
            );
        }
    }
}

#[test]
fn overlap_mode_can_flip_at_a_resume_boundary() {
    let input = test_input(35, 27, 11);
    let cfg = config();
    let brk = 2;
    for grid in [Grid::new(2, 2), Grid::new(3, 2)] {
        let reference = grid_run(&input, grid, &cfg, ITERS, false, 0, false);
        // Overlapped up to the checkpoint, synchronous after — and the
        // reverse — both reproduce the uninterrupted trajectory.
        let on_off = grid_run(&input, grid, &cfg, brk, true, ITERS - brk, false);
        let off_on = grid_run(&input, grid, &cfg, brk, false, ITERS - brk, true);
        for (rank, ((f, a), b)) in reference.iter().zip(&on_off).zip(&off_on).enumerate() {
            assert_eq!(
                f.0, a.0,
                "{}x{} rank {rank}: overlap→sync resume diverged",
                grid.pr, grid.pc
            );
            assert_eq!(
                f.1, a.1,
                "{}x{} rank {rank}: overlap→sync resume diverged",
                grid.pr, grid.pc
            );
            assert_eq!(
                f.0, b.0,
                "{}x{} rank {rank}: sync→overlap resume diverged",
                grid.pr, grid.pc
            );
            assert_eq!(
                f.1, b.1,
                "{}x{} rank {rank}: sync→overlap resume diverged",
                grid.pr, grid.pc
            );
        }
    }
}

fn tmp_ckpt(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "hpc_nmf_overlap_ckpt_{}_{}.bin",
        tag,
        std::process::id()
    ))
}

/// Durable checkpoints written mid-run under the overlapped schedule
/// resume bit-identically for all three schemes (the sequential and
/// naive schemes take the defaulted synchronous hooks; HPC runs fully
/// split-phase).
#[test]
fn disk_checkpoint_resume_through_overlapped_schedule_all_schemes() {
    let input = test_input(34, 26, 19);
    let cfg = config();
    let brk = 2;
    for (tag, algo, p) in [
        ("seq", Algo::Sequential, 1),
        ("naive", Algo::Naive, 3),
        ("hpc2d", Algo::Hpc2D, 4),
    ] {
        let session = |iters: usize| {
            let mut m = Nmf::on(&input)
                .config(cfg)
                .algo(algo)
                .ranks(p)
                .build()
                .expect("valid session");
            for _ in 0..iters {
                m.step();
            }
            m
        };

        let full = session(ITERS);

        let mid = session(brk);
        let path = tmp_ckpt(tag);
        mid.save(&path).expect("checkpoint write");
        let mut resumed = Model::load(&path, &input).expect("checkpoint read");
        assert!(resumed.config().overlap, "overlap defaults on after load");
        for _ in 0..(ITERS - brk) {
            resumed.step();
        }
        std::fs::remove_file(&path).ok();

        assert_eq!(
            full.factors(),
            resumed.factors(),
            "{tag}: factors diverged across a durable checkpoint"
        );
    }
}
