//! Builder validation coverage: every [`NmfError`] variant is
//! constructible through the public API and carries an actionable
//! message (one that states the violated constraint *and* a value that
//! would satisfy it). This is the contract that lets `nmf_cli` and
//! future serving layers surface configuration problems to users
//! verbatim instead of translating panics.

use hpc_nmf::prelude::*;
use nmf_matrix::rng::Fill;
use nmf_matrix::Mat;

fn input(m: usize, n: usize) -> Input {
    Input::Dense(Mat::uniform(m, n, 3))
}

/// Builds with `f` applied to a baseline-valid builder and returns the
/// error it must produce.
fn build_err(a: &Input, f: impl FnOnce(NmfBuilder<'_>) -> NmfBuilder<'_>) -> NmfError {
    f(Nmf::on(a).rank(3)).build().expect_err("must be invalid")
}

#[test]
fn baseline_builder_is_valid() {
    let a = input(20, 15);
    assert!(Nmf::on(&a).rank(3).build().is_ok());
}

#[test]
fn empty_input_is_rejected() {
    let a = Input::Dense(Mat::zeros(0, 5));
    let e = build_err(&a, |b| b);
    assert!(matches!(e, NmfError::EmptyInput { m: 0, n: 5 }));
    assert!(e.to_string().contains("0x5"), "{e}");
}

#[test]
fn missing_rank_is_rejected_with_a_hint() {
    let a = input(20, 15);
    let e = Nmf::on(&a).build().expect_err("no rank set");
    assert!(matches!(e, NmfError::MissingRank));
    assert!(e.to_string().contains(".rank(k)"), "{e}");
}

#[test]
fn rank_out_of_range_names_the_valid_interval() {
    let a = input(20, 15);
    for k in [0, 16, 1000] {
        let e = build_err(&a, |b| b.rank(k));
        assert!(matches!(e, NmfError::RankOutOfRange { .. }));
        assert!(
            e.to_string().contains("1..=15"),
            "message must name the valid range: {e}"
        );
    }
    // Boundary values are fine.
    assert!(Nmf::on(&a).rank(1).build().is_ok());
    assert!(Nmf::on(&a).rank(15).build().is_ok());
}

#[test]
fn bpp_rank_limit_suggests_an_alternative() {
    let a = input(300, 200);
    let e = build_err(&a, |b| b.rank(129).solver(SolverKind::Bpp));
    assert!(matches!(
        e,
        NmfError::SolverRankLimit {
            k: 129,
            limit: 128,
            ..
        }
    ));
    assert!(e.to_string().contains("Hals"), "{e}");
    // Other solvers take the same k.
    assert!(Nmf::on(&a)
        .rank(129)
        .solver(SolverKind::Hals)
        .build()
        .is_ok());
}

#[test]
fn zero_ranks_is_rejected() {
    let a = input(20, 15);
    let e = build_err(&a, |b| b.ranks(0));
    assert!(matches!(e, NmfError::NoRanks));
    assert!(e.to_string().contains("p >= 1"), "{e}");
}

#[test]
fn sequential_on_many_ranks_is_rejected() {
    let a = input(20, 15);
    let e = build_err(&a, |b| b.algo(Algo::Sequential).ranks(4));
    assert!(matches!(e, NmfError::SequentialRanks { ranks: 4 }));
    assert!(e.to_string().contains(".ranks(1)"), "{e}");
}

#[test]
fn naive_beyond_the_short_dimension_is_rejected() {
    let a = input(20, 15);
    let e = build_err(&a, |b| b.algo(Algo::Naive).ranks(16));
    assert!(matches!(e, NmfError::TooManyRanks { ranks: 16, .. }));
    assert!(
        e.to_string().contains("at most 15"),
        "message must name the cap: {e}"
    );
    assert!(Nmf::on(&a)
        .rank(3)
        .algo(Algo::Naive)
        .ranks(15)
        .build()
        .is_ok());
}

#[test]
fn grid_mismatch_lists_the_valid_grids() {
    let a = input(40, 30);
    let e = build_err(&a, |b| b.algo(Algo::HpcGrid(Grid::new(2, 3))).ranks(4));
    assert!(matches!(e, NmfError::GridMismatch { ranks: 4, .. }));
    let msg = e.to_string();
    for g in ["1x4", "2x2", "4x1"] {
        assert!(msg.contains(g), "suggestions must include {g}: {msg}");
    }
}

#[test]
fn oversized_grid_reports_the_largest_fit() {
    let a = input(20, 16);
    let e = build_err(&a, |b| {
        b.rank(2).algo(Algo::HpcGrid(Grid::new(8, 8))).ranks(64)
    });
    assert!(matches!(e, NmfError::GridTooLarge { .. }));
    assert!(
        e.to_string().contains("ranks fit"),
        "message must suggest a fitting rank count: {e}"
    );
}

#[test]
fn bad_tolerances_are_rejected() {
    let a = input(20, 15);
    for t in [-1.0, f64::NAN, f64::INFINITY] {
        let e = build_err(&a, |b| b.tol(t));
        assert!(matches!(e, NmfError::InvalidTolerance { .. }), "tol {t}");
    }
    let e = build_err(&a, |b| {
        b.convergence(ConvergencePolicy::RelTol { tol: -0.5 })
    });
    assert!(matches!(e, NmfError::InvalidTolerance { .. }));
}

#[test]
fn empty_window_is_rejected() {
    let a = input(20, 15);
    let e = build_err(&a, |b| {
        b.convergence(ConvergencePolicy::WindowedBudget {
            window: 0,
            tol: 1e-4,
            budget: None,
        })
    });
    assert!(matches!(e, NmfError::InvalidWindow));
    assert!(e.to_string().contains("window >= 1"), "{e}");
}

#[test]
fn negative_regularization_is_an_error_not_a_panic() {
    let a = input(20, 15);
    let e = build_err(&a, |b| b.l2(-0.1, 0.0));
    assert!(matches!(e, NmfError::InvalidRegularization { .. }));
    let e = build_err(&a, |b| b.l2(0.0, f64::NAN));
    assert!(matches!(e, NmfError::InvalidRegularization { .. }));
    assert!(Nmf::on(&a).rank(3).l2(0.1, 0.2).build().is_ok());
}

#[test]
fn warm_start_shapes_are_validated() {
    let a = input(20, 15);
    let e = build_err(&a, |b| b.warm_start(Mat::zeros(5, 3), Mat::zeros(15, 3)));
    assert!(matches!(e, NmfError::WarmStartShape { which: "W", .. }));
    assert!(e.to_string().contains("20x3"), "expected shape named: {e}");
    let e = build_err(&a, |b| b.warm_start(Mat::zeros(20, 3), Mat::zeros(15, 4)));
    assert!(matches!(e, NmfError::WarmStartShape { which: "H^T", .. }));
}

#[test]
fn warm_start_values_are_validated() {
    let a = input(20, 15);
    let mut w = Mat::zeros(20, 3);
    w[(2, 1)] = -0.5;
    let e = build_err(&a, |b| b.warm_start(w, Mat::zeros(15, 3)));
    assert!(matches!(e, NmfError::WarmStartInvalid { which: "W" }));
    assert!(
        e.to_string().contains("project_nonnegative"),
        "message must point at the fix: {e}"
    );
    let mut ht = Mat::zeros(15, 3);
    ht[(0, 0)] = f64::NAN;
    let e = build_err(&a, |b| b.warm_start(Mat::zeros(20, 3), ht));
    assert!(matches!(e, NmfError::WarmStartInvalid { which: "H^T" }));
}

#[test]
fn io_error_carries_the_path_and_source() {
    let a = input(20, 15);
    let missing = std::env::temp_dir().join("hpc_nmf_definitely_missing.ckpt");
    let e = Model::load(&missing, &a).expect_err("missing file");
    assert!(matches!(e, NmfError::Io { .. }));
    assert!(e.to_string().contains("hpc_nmf_definitely_missing"), "{e}");
    assert!(
        std::error::Error::source(&e).is_some(),
        "Io must expose its source error"
    );
}

#[test]
fn non_checkpoint_files_are_corrupt_with_the_path_named() {
    let a = input(20, 15);
    let path = std::env::temp_dir().join(format!("hpc_nmf_not_a_ckpt_{}.bin", std::process::id()));
    std::fs::write(&path, b"definitely not a checkpoint").expect("writes");
    let e = Model::load(&path, &a).expect_err("garbage file");
    assert!(matches!(e, NmfError::Corrupt { .. }));
    assert!(e.to_string().contains("magic"), "{e}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn invalid_args_displays_every_error() {
    let e = NmfError::InvalidArgs {
        errors: vec!["unknown flag --x".into(), "missing value for --k".into()],
    };
    let msg = e.to_string();
    assert!(msg.contains("--x") && msg.contains("--k"), "{msg}");
}

#[test]
fn errors_implement_std_error() {
    // Ensures the type composes with ? in application code.
    fn takes_err(_: &dyn std::error::Error) {}
    takes_err(&NmfError::MissingRank);
}

#[test]
fn refit_is_validated_like_build() {
    let a = input(20, 15);
    let mut model = Nmf::on(&a)
        .rank(3)
        .ranks(4)
        .algo(Algo::Hpc2D)
        .max_iters(2)
        .build()
        .expect("valid");
    let e = model.refit(NmfConfig::new(100)).expect_err("k too large");
    assert!(matches!(e, NmfError::RankOutOfRange { .. }));
    // The session survives a rejected refit.
    model.run();
    assert_eq!(model.iterations(), 2);
}
